//! # submod_kernels — runtime-dispatched SIMD compute kernels
//!
//! The arithmetic floor of the workspace: every distance evaluation in the
//! k-NN graph build, IVF probe ranking, and k-means now funnels through
//! this crate. It provides explicit `std::arch` SIMD (AVX2 on `x86_64`,
//! NEON on `aarch64`) with a safe scalar fallback, selected **once per
//! process** by runtime feature detection, plus register-blocked batch
//! primitives that stream the row matrix once per *query block* instead of
//! once per query.
//!
//! ## Determinism contract
//!
//! Every kernel — scalar, AVX2, and NEON — accumulates in the **same fixed
//! 8-lane reduction order** and never uses FMA: lane `l` accumulates
//! elements `l, l+8, l+16, …` with a plain multiply-then-add, the eight
//! lane sums are combined left to right, and remainder elements are added
//! sequentially. Multiplication and addition of `f32` are IEEE-exact, so
//! the scalar and SIMD paths return **bitwise-identical** results for any
//! input (including denormals, infinities, and misaligned slices), and the
//! batch primitives visit rows in exactly the order their one-row
//! counterparts do. The property tests in `tests/identity.rs` pin this,
//! and the workspace test suite runs under both `SUBMOD_KERNELS=scalar`
//! and the default dispatch in CI.
//!
//! ## Dispatch policy
//!
//! The backend resolves once (first kernel call) from the
//! `SUBMOD_KERNELS` environment variable:
//!
//! - `scalar` — force the portable fallback;
//! - `auto`, unset, or any other value — detect at runtime: AVX2 when the
//!   CPU reports it, NEON on `aarch64` (mandatory there), scalar
//!   otherwise.
//!
//! [`backend`] reports the resolved choice; [`Backend::name`] is what the
//! README and bench output print.
//!
//! ## Layout conventions
//!
//! Matrices are dense row-major `f32` slices (`n × dim`), matching
//! `submod_knn::Embeddings::as_flat`. Norms are precomputed by the caller
//! and hoisted out of every inner loop.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod scalar;
mod topk;

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

pub use batch::{batch_top_k, cosine_top_k_gather, dot_scores, l2_argmin};
pub use topk::TopK;

use std::sync::OnceLock;

/// A scored row: `(row index, score)` — cosine similarity for the top-k
/// kernels, squared L2 distance for [`l2_argmin`].
pub type Scored = (u32, f32);

/// The instruction-set backend a kernel call executes on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Backend {
    /// Portable scalar loops in the fixed 8-lane reduction order.
    Scalar,
    /// 256-bit AVX2 vectors (x86_64, runtime-detected).
    Avx2,
    /// 128-bit NEON vectors ×2 (aarch64, architecturally guaranteed).
    Neon,
}

impl Backend {
    /// Human-readable backend name (`"scalar"`, `"avx2"`, `"neon"`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }
}

static BACKEND: OnceLock<Backend> = OnceLock::new();

/// The backend every kernel in this process dispatches to, resolved once
/// from `SUBMOD_KERNELS` (see the crate docs for the policy).
pub fn backend() -> Backend {
    *BACKEND.get_or_init(|| {
        let resolved = match std::env::var("SUBMOD_KERNELS").as_deref().map(str::trim) {
            Ok("scalar") => Backend::Scalar,
            _ => detect(),
        };
        // Record which ISA this process dispatches to, once, so a metrics
        // dump always says what the kernel tallies were measured on.
        submod_obs::counter(match resolved {
            Backend::Scalar => "kernels.backend.scalar",
            Backend::Avx2 => "kernels.backend.avx2",
            Backend::Neon => "kernels.backend.neon",
        })
        .incr();
        resolved
    })
}

#[cfg(target_arch = "x86_64")]
fn detect() -> Backend {
    if std::arch::is_x86_feature_detected!("avx2") {
        Backend::Avx2
    } else {
        Backend::Scalar
    }
}

#[cfg(target_arch = "aarch64")]
fn detect() -> Backend {
    // NEON is a mandatory part of AArch64.
    Backend::Neon
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn detect() -> Backend {
    Backend::Scalar
}

/// Dot product of two equal-length vectors in the fixed 8-lane reduction
/// order.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// ```
/// assert_eq!(submod_kernels::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot of mismatched lengths");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => x86::dot(a, b),
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::dot(a, b),
        _ => scalar::dot(a, b),
    }
}

/// Squared Euclidean distance between two equal-length vectors in the
/// fixed 8-lane reduction order.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn l2_distance_squared(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "distance of mismatched lengths");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => x86::l2(a, b),
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::l2(a, b),
        _ => scalar::l2(a, b),
    }
}

/// Euclidean norm (`sqrt(dot(a, a))`).
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Four dot products of `query` against four rows at once — the
/// register-blocked micro-kernel the batch drivers tile with. Each result
/// is bitwise-identical to the corresponding single-row [`dot`].
///
/// # Panics
///
/// Panics if any row length differs from `query.len()`.
#[inline]
pub fn dot4(query: &[f32], rows: [&[f32]; 4]) -> [f32; 4] {
    for r in rows {
        assert_eq!(query.len(), r.len(), "dot4 of mismatched lengths");
    }
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => x86::dot4(query, rows),
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::dot4(query, rows),
        _ => scalar::dot4(query, rows),
    }
}

/// Four squared L2 distances of `query` against four rows at once; each
/// result is bitwise-identical to the single-row [`l2_distance_squared`].
///
/// # Panics
///
/// Panics if any row length differs from `query.len()`.
#[inline]
pub fn l2_4(query: &[f32], rows: [&[f32]; 4]) -> [f32; 4] {
    for r in rows {
        assert_eq!(query.len(), r.len(), "l2_4 of mismatched lengths");
    }
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => x86::l2_4(query, rows),
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::l2_4(query, rows),
        _ => scalar::l2_4(query, rows),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_resolves_once_and_names() {
        let b = backend();
        assert_eq!(b, backend());
        assert!(["scalar", "avx2", "neon"].contains(&b.name()));
    }

    #[test]
    fn dot_matches_scalar_reference() {
        let a: Vec<f32> = (0..131).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..131).map(|i| (i as f32).cos()).collect();
        assert_eq!(dot(&a, &b).to_bits(), scalar::dot(&a, &b).to_bits());
        assert_eq!(l2_distance_squared(&a, &b).to_bits(), scalar::l2(&a, &b).to_bits());
    }

    #[test]
    fn blocked_kernels_match_single_row() {
        let q: Vec<f32> = (0..67).map(|i| (i as f32 * 0.7).sin()).collect();
        let rows: Vec<Vec<f32>> =
            (0..4).map(|r| (0..67).map(|i| ((i + r) as f32 * 0.3).cos()).collect()).collect();
        let quad = [&rows[0][..], &rows[1][..], &rows[2][..], &rows[3][..]];
        let d4 = dot4(&q, quad);
        let l4 = l2_4(&q, quad);
        for j in 0..4 {
            assert_eq!(d4[j].to_bits(), dot(&q, &rows[j]).to_bits());
            assert_eq!(l4[j].to_bits(), l2_distance_squared(&q, &rows[j]).to_bits());
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(norm(&[]), 0.0);
        assert_eq!(l2_distance_squared(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_lengths_panic() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
