//! AVX2 kernels (x86_64). The only `unsafe` in the workspace's compute
//! path lives here, and it is confined to two obligations:
//!
//! 1. **ISA availability** — every `#[target_feature(enable = "avx2")]`
//!    function is reached only through [`crate::backend`], which verified
//!    `is_x86_feature_detected!("avx2")` at dispatch time.
//! 2. **In-bounds loads** — `_mm256_loadu_ps` reads 8 floats at offsets
//!    `i*8` with `i < len/8`, so every read stays inside the slice;
//!    remainder elements go through the shared safe tail.
//!
//! Determinism: `_mm256_mul_ps` / `_mm256_add_ps` (never FMA) round each
//! lane exactly like the scalar multiply-then-add, the accumulator is
//! spilled to an array and reduced by the same left-to-right helper the
//! scalar backend uses, so results are bitwise-identical to
//! [`crate::scalar`].

#![allow(unsafe_code)]

use crate::scalar::{reduce_dot_tail, reduce_l2_tail, LANES};
use std::arch::x86_64::{
    __m256, _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    _mm256_sub_ps,
};

#[inline]
fn spill(acc: __m256) -> [f32; LANES] {
    let mut lanes = [0.0f32; LANES];
    // SAFETY: `lanes` is exactly 8 floats, the width of a 256-bit store.
    unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), acc) };
    lanes
}

pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    // SAFETY: dispatch verified AVX2 (module docs, obligation 1).
    unsafe { dot_avx2(a, b) }
}

pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    // SAFETY: dispatch verified AVX2 (module docs, obligation 1).
    unsafe { l2_avx2(a, b) }
}

pub fn dot4(query: &[f32], rows: [&[f32]; 4]) -> [f32; 4] {
    // SAFETY: dispatch verified AVX2 (module docs, obligation 1).
    unsafe { dot4_avx2(query, rows) }
}

pub fn l2_4(query: &[f32], rows: [&[f32]; 4]) -> [f32; 4] {
    // SAFETY: dispatch verified AVX2 (module docs, obligation 1).
    unsafe { l2_4_avx2(query, rows) }
}

#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    let chunks = a.len() / LANES;
    let mut acc = _mm256_setzero_ps();
    for i in 0..chunks {
        let off = i * LANES;
        // SAFETY: off + 8 <= chunks * 8 <= len (obligation 2).
        let va = unsafe { _mm256_loadu_ps(a.as_ptr().add(off)) };
        let vb = unsafe { _mm256_loadu_ps(b.as_ptr().add(off)) };
        acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
    }
    reduce_dot_tail(spill(acc), a, b, chunks * LANES)
}

#[target_feature(enable = "avx2")]
unsafe fn l2_avx2(a: &[f32], b: &[f32]) -> f32 {
    let chunks = a.len() / LANES;
    let mut acc = _mm256_setzero_ps();
    for i in 0..chunks {
        let off = i * LANES;
        // SAFETY: off + 8 <= chunks * 8 <= len (obligation 2).
        let va = unsafe { _mm256_loadu_ps(a.as_ptr().add(off)) };
        let vb = unsafe { _mm256_loadu_ps(b.as_ptr().add(off)) };
        let d = _mm256_sub_ps(va, vb);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
    }
    reduce_l2_tail(spill(acc), a, b, chunks * LANES)
}

#[target_feature(enable = "avx2")]
unsafe fn dot4_avx2(query: &[f32], rows: [&[f32]; 4]) -> [f32; 4] {
    let chunks = query.len() / LANES;
    let mut acc = [_mm256_setzero_ps(); 4];
    for i in 0..chunks {
        let off = i * LANES;
        // SAFETY: off + 8 <= chunks * 8 <= len for query and each row
        // (lengths asserted equal by the dispatcher; obligation 2).
        let vq = unsafe { _mm256_loadu_ps(query.as_ptr().add(off)) };
        for r in 0..4 {
            let vr = unsafe { _mm256_loadu_ps(rows[r].as_ptr().add(off)) };
            acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(vq, vr));
        }
    }
    let done = chunks * LANES;
    [
        reduce_dot_tail(spill(acc[0]), query, rows[0], done),
        reduce_dot_tail(spill(acc[1]), query, rows[1], done),
        reduce_dot_tail(spill(acc[2]), query, rows[2], done),
        reduce_dot_tail(spill(acc[3]), query, rows[3], done),
    ]
}

#[target_feature(enable = "avx2")]
unsafe fn l2_4_avx2(query: &[f32], rows: [&[f32]; 4]) -> [f32; 4] {
    let chunks = query.len() / LANES;
    let mut acc = [_mm256_setzero_ps(); 4];
    for i in 0..chunks {
        let off = i * LANES;
        // SAFETY: off + 8 <= chunks * 8 <= len for query and each row
        // (lengths asserted equal by the dispatcher; obligation 2).
        let vq = unsafe { _mm256_loadu_ps(query.as_ptr().add(off)) };
        for r in 0..4 {
            let vr = unsafe { _mm256_loadu_ps(rows[r].as_ptr().add(off)) };
            let d = _mm256_sub_ps(vq, vr);
            acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(d, d));
        }
    }
    let done = chunks * LANES;
    [
        reduce_l2_tail(spill(acc[0]), query, rows[0], done),
        reduce_l2_tail(spill(acc[1]), query, rows[1], done),
        reduce_l2_tail(spill(acc[2]), query, rows[2], done),
        reduce_l2_tail(spill(acc[3]), query, rows[3], done),
    ]
}
