//! A fixed-capacity top-k tracker shared by every search path.
//!
//! Moved here from `submod_knn::brute` so the single-query and batch
//! kernels select results with literally the same code: a min-heap by
//! score with ties breaking toward the larger index, so smaller indices
//! win the kept set and the final ordering is fully deterministic.

use crate::Scored;
use std::cmp::Ordering;

/// A fixed-capacity top-k tracker (min-heap by score, tie-break by
/// larger index so smaller indices win overall).
#[derive(Clone, Debug)]
pub struct TopK {
    k: usize,
    // (score, id): the *worst* kept entry sits at heap[0].
    heap: Vec<(f32, u32)>,
}

impl TopK {
    /// A tracker keeping the `k` best offers.
    pub fn new(k: usize) -> Self {
        TopK { k, heap: Vec::with_capacity(k + 1) }
    }

    /// `true` if `a` ranks strictly ahead of `b`: higher score, or equal
    /// score with smaller id.
    ///
    /// This is the dataflow `argmax_prefers` contract verbatim — plain
    /// `>`/`==` on the score so `-0.0` and `+0.0` tie and fall through to
    /// the id, never `total_cmp` (which would rank them). Sound because
    /// NaN is excluded at the [`Self::offer`] boundary; the old
    /// `partial_cmp(..).unwrap_or(Equal)` silently treated a NaN offer as
    /// a tie and corrupted the heap order instead.
    fn better(a: (f32, u32), b: (f32, u32)) -> bool {
        a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
    }

    /// `true` if `a` is worse than `b` (lower score, or equal score with
    /// larger id).
    fn worse(a: (f32, u32), b: (f32, u32)) -> bool {
        Self::better(b, a)
    }

    /// Offers one candidate; kept only if it beats the current worst.
    ///
    /// # Panics
    ///
    /// Panics if `score` is NaN — the one input the pop-order contract
    /// cannot rank (cf. `AddressablePq`, which asserts the same at its
    /// boundary).
    pub fn offer(&mut self, id: u32, score: f32) {
        assert!(!score.is_nan(), "scores offered to TopK must not be NaN");
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push((score, id));
            let mut i = self.heap.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if Self::worse(self.heap[i], self.heap[parent]) {
                    self.heap.swap(i, parent);
                    i = parent;
                } else {
                    break;
                }
            }
        } else if Self::worse(self.heap[0], (score, id)) {
            self.heap[0] = (score, id);
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut worst = i;
                if l < self.heap.len() && Self::worse(self.heap[l], self.heap[worst]) {
                    worst = l;
                }
                if r < self.heap.len() && Self::worse(self.heap[r], self.heap[worst]) {
                    worst = r;
                }
                if worst == i {
                    break;
                }
                self.heap.swap(i, worst);
                i = worst;
            }
        }
    }

    /// Drains into `(id, score)` pairs sorted by descending score, ties
    /// toward the smaller index — the same order [`Self::better`] ranks
    /// by, so the heap and the final sort can never disagree.
    pub fn into_sorted(self) -> Vec<Scored> {
        let mut entries = self.heap;
        entries.sort_by(|&a, &b| {
            if Self::better(a, b) {
                Ordering::Less
            } else if Self::better(b, a) {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        });
        entries.into_iter().map(|(score, id)| (id, score)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k_with_deterministic_ties() {
        let mut top = TopK::new(2);
        for (id, s) in [(3u32, 0.5f32), (1, 0.9), (2, 0.9), (0, 0.1)] {
            top.offer(id, s);
        }
        assert_eq!(top.into_sorted(), vec![(1, 0.9), (2, 0.9)]);
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let mut top = TopK::new(0);
        top.offer(0, 1.0);
        assert!(top.into_sorted().is_empty());
    }
}
