//! NEON kernels (aarch64). NEON is a mandatory AArch64 feature, so the
//! `unsafe` here carries only the in-bounds obligation: `vld1q_f32`
//! reads 4 floats at offsets `i*8` and `i*8 + 4` with `i < len/8`, so
//! every read stays inside the slice; remainder elements go through the
//! shared safe tail.
//!
//! Determinism: two 4-lane quads emulate the fixed 8-lane accumulator —
//! `vmulq_f32` / `vaddq_f32` (never `vfmaq`) round each lane exactly
//! like the scalar multiply-then-add, both quads are spilled into one
//! 8-float array in lane order, and the same left-to-right reduction as
//! the scalar backend finishes the sum. Results are bitwise-identical to
//! [`crate::scalar`].

#![allow(unsafe_code)]

use crate::scalar::{reduce_dot_tail, reduce_l2_tail, LANES};
use std::arch::aarch64::{
    float32x4_t, vaddq_f32, vdupq_n_f32, vld1q_f32, vmulq_f32, vst1q_f32, vsubq_f32,
};

#[inline]
fn spill(lo: float32x4_t, hi: float32x4_t) -> [f32; LANES] {
    let mut lanes = [0.0f32; LANES];
    // SAFETY: `lanes` holds exactly two 128-bit quads.
    unsafe {
        vst1q_f32(lanes.as_mut_ptr(), lo);
        vst1q_f32(lanes.as_mut_ptr().add(4), hi);
    }
    lanes
}

pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let chunks = a.len() / LANES;
    // SAFETY: NEON is mandatory on aarch64; loads stay in bounds
    // (module docs).
    unsafe {
        let (mut lo, mut hi) = (vdupq_n_f32(0.0), vdupq_n_f32(0.0));
        for i in 0..chunks {
            let off = i * LANES;
            let (ap, bp) = (a.as_ptr().add(off), b.as_ptr().add(off));
            lo = vaddq_f32(lo, vmulq_f32(vld1q_f32(ap), vld1q_f32(bp)));
            hi = vaddq_f32(hi, vmulq_f32(vld1q_f32(ap.add(4)), vld1q_f32(bp.add(4))));
        }
        reduce_dot_tail(spill(lo, hi), a, b, chunks * LANES)
    }
}

pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    let chunks = a.len() / LANES;
    // SAFETY: NEON is mandatory on aarch64; loads stay in bounds
    // (module docs).
    unsafe {
        let (mut lo, mut hi) = (vdupq_n_f32(0.0), vdupq_n_f32(0.0));
        for i in 0..chunks {
            let off = i * LANES;
            let (ap, bp) = (a.as_ptr().add(off), b.as_ptr().add(off));
            let dl = vsubq_f32(vld1q_f32(ap), vld1q_f32(bp));
            let dh = vsubq_f32(vld1q_f32(ap.add(4)), vld1q_f32(bp.add(4)));
            lo = vaddq_f32(lo, vmulq_f32(dl, dl));
            hi = vaddq_f32(hi, vmulq_f32(dh, dh));
        }
        reduce_l2_tail(spill(lo, hi), a, b, chunks * LANES)
    }
}

pub fn dot4(query: &[f32], rows: [&[f32]; 4]) -> [f32; 4] {
    let chunks = query.len() / LANES;
    // SAFETY: NEON is mandatory on aarch64; loads stay in bounds
    // (module docs).
    unsafe {
        let mut lo = [vdupq_n_f32(0.0); 4];
        let mut hi = [vdupq_n_f32(0.0); 4];
        for i in 0..chunks {
            let off = i * LANES;
            let qp = query.as_ptr().add(off);
            let (ql, qh) = (vld1q_f32(qp), vld1q_f32(qp.add(4)));
            for r in 0..4 {
                let rp = rows[r].as_ptr().add(off);
                lo[r] = vaddq_f32(lo[r], vmulq_f32(ql, vld1q_f32(rp)));
                hi[r] = vaddq_f32(hi[r], vmulq_f32(qh, vld1q_f32(rp.add(4))));
            }
        }
        let done = chunks * LANES;
        [
            reduce_dot_tail(spill(lo[0], hi[0]), query, rows[0], done),
            reduce_dot_tail(spill(lo[1], hi[1]), query, rows[1], done),
            reduce_dot_tail(spill(lo[2], hi[2]), query, rows[2], done),
            reduce_dot_tail(spill(lo[3], hi[3]), query, rows[3], done),
        ]
    }
}

pub fn l2_4(query: &[f32], rows: [&[f32]; 4]) -> [f32; 4] {
    let chunks = query.len() / LANES;
    // SAFETY: NEON is mandatory on aarch64; loads stay in bounds
    // (module docs).
    unsafe {
        let mut lo = [vdupq_n_f32(0.0); 4];
        let mut hi = [vdupq_n_f32(0.0); 4];
        for i in 0..chunks {
            let off = i * LANES;
            let qp = query.as_ptr().add(off);
            let (ql, qh) = (vld1q_f32(qp), vld1q_f32(qp.add(4)));
            for r in 0..4 {
                let rp = rows[r].as_ptr().add(off);
                let dl = vsubq_f32(ql, vld1q_f32(rp));
                let dh = vsubq_f32(qh, vld1q_f32(rp.add(4)));
                lo[r] = vaddq_f32(lo[r], vmulq_f32(dl, dl));
                hi[r] = vaddq_f32(hi[r], vmulq_f32(dh, dh));
            }
        }
        let done = chunks * LANES;
        [
            reduce_l2_tail(spill(lo[0], hi[0]), query, rows[0], done),
            reduce_l2_tail(spill(lo[1], hi[1]), query, rows[1], done),
            reduce_l2_tail(spill(lo[2], hi[2]), query, rows[2], done),
            reduce_l2_tail(spill(lo[3], hi[3]), query, rows[3], done),
        ]
    }
}
