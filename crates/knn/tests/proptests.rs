//! Property-based tests for the k-NN layer: exact search against a naive
//! reference, backend sanity, and graph-construction invariants.

use proptest::prelude::*;
use submod_knn::{
    build_knn_graph, cosine_similarity, Embeddings, ExactKnn, KnnBackend, NearestNeighbors,
};

fn arb_embeddings(max_n: usize, dim: usize) -> impl Strategy<Value = Embeddings> {
    (2usize..=max_n)
        .prop_flat_map(move |n| proptest::collection::vec(-1.0f32..1.0, n * dim))
        .prop_map(move |flat| Embeddings::from_flat(dim, flat).expect("embeddings"))
}

/// Naive top-k by full sort — the reference for the heap-based search.
fn naive_top_k(data: &Embeddings, query: &[f32], k: usize, exclude: u32) -> Vec<u32> {
    let mut scored: Vec<(f32, u32)> = (0..data.len())
        .filter(|&i| i as u32 != exclude)
        .map(|i| (cosine_similarity(data.row(i), query), i as u32))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    scored.into_iter().take(k).map(|(_, i)| i).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The heap-based exact search returns exactly the naive reference.
    #[test]
    fn exact_search_matches_naive(data in arb_embeddings(40, 4), k in 1usize..10) {
        let index = ExactKnn::build(data.clone()).unwrap();
        for q in 0..data.len().min(5) {
            let ours: Vec<u32> = index
                .search_excluding(data.row(q), k, q as u32)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            let reference = naive_top_k(&data, data.row(q), k, q as u32);
            prop_assert_eq!(&ours, &reference, "query {}", q);
        }
    }

    /// Built graphs are always symmetric with valid weights, regardless of
    /// the backend.
    #[test]
    fn graphs_are_symmetric_with_valid_weights(
        data in arb_embeddings(60, 4),
        k in 1usize..6,
        backend_pick in 0u8..3,
    ) {
        let backend = match backend_pick {
            0 => KnnBackend::Exact,
            1 => KnnBackend::Ivf { nlist: 4, nprobe: 2 },
            _ => KnnBackend::Lsh { tables: 4, bits: 6 },
        };
        prop_assume!(data.len() > k);
        let graph = build_knn_graph(&data, k, &backend, 7).unwrap();
        prop_assert_eq!(graph.num_nodes(), data.len());
        prop_assert!(graph.is_symmetric());
        let (_, _, weights) = graph.csr_parts();
        for &w in weights {
            prop_assert!(w > 0.0 && w <= 1.0, "weight {}", w);
        }
    }

    /// Search results are sorted by similarity and never contain the
    /// excluded point or duplicates.
    #[test]
    fn search_results_are_sorted_and_unique(data in arb_embeddings(50, 4), k in 1usize..12) {
        let index = ExactKnn::build(data.clone()).unwrap();
        let hits = index.search_excluding(data.row(0), k, 0);
        for pair in hits.windows(2) {
            prop_assert!(pair[0].1 >= pair[1].1);
        }
        let mut ids: Vec<u32> = hits.iter().map(|&(i, _)| i).collect();
        prop_assert!(!ids.contains(&0));
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), before);
    }

    /// Cosine similarity is symmetric, bounded, and 1 on self (non-zero).
    #[test]
    fn cosine_properties(
        a in proptest::collection::vec(-10.0f32..10.0, 6),
        b in proptest::collection::vec(-10.0f32..10.0, 6),
    ) {
        let ab = cosine_similarity(&a, &b);
        let ba = cosine_similarity(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((-1.0..=1.0).contains(&ab));
        let norm_a: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assume!(norm_a > 0.1);
        prop_assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-5);
    }
}

/// Pins the batched-search contract on exactly what `KnnBackend::auto`
/// builds: below the crossover (exact) and above it (IVF), a
/// `search_batch` / `search_batch_excluding` call must return the same
/// ids **and the same similarity bits** as one-query-at-a-time calls.
#[test]
fn auto_backend_batch_equals_single_query_searches() {
    use submod_knn::{IvfIndex, KnnBackend, AUTO_EXACT_MAX_POINTS};

    fn embeddings(n: usize, dim: usize, seed: u64) -> Embeddings {
        let mut s = seed;
        let flat: Vec<f32> = (0..n * dim)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect();
        Embeddings::from_flat(dim, flat).unwrap()
    }

    fn check(index: &dyn NearestNeighbors, data: &Embeddings, k: usize) {
        let probe = data.len().min(60);
        let queries: Vec<&[f32]> = (0..probe).map(|v| data.row(v)).collect();
        let excludes: Vec<u32> = (0..probe as u32).collect();
        let batched = index.search_batch(&queries, k);
        let batched_ex = index.search_batch_excluding(&queries, k, &excludes);
        for (v, q) in queries.iter().enumerate() {
            let single = index.search(q, k);
            let single_ex = index.search_excluding(q, k, v as u32);
            assert_eq!(batched[v].len(), single.len(), "query {v}");
            for (got, want) in batched[v].iter().zip(&single) {
                assert_eq!(got.0, want.0, "query {v}");
                assert_eq!(got.1.to_bits(), want.1.to_bits(), "query {v}");
            }
            assert_eq!(batched_ex[v].len(), single_ex.len(), "query {v}");
            for (got, want) in batched_ex[v].iter().zip(&single_ex) {
                assert_eq!(got.0, want.0, "query {v}");
                assert_eq!(got.1.to_bits(), want.1.to_bits(), "query {v}");
            }
        }
    }

    // Below the crossover `auto` is exact (the kernel batch path).
    let small = embeddings(500, 16, 7);
    assert_eq!(KnnBackend::auto(small.len()), KnnBackend::Exact);
    let exact = ExactKnn::build(small.clone()).unwrap();
    check(&exact, &small, 10);

    // Above it `auto` is IVF with nlist = √n, nprobe = 8.
    let big = embeddings(AUTO_EXACT_MAX_POINTS + 100, 8, 13);
    let KnnBackend::Ivf { nlist, nprobe } = KnnBackend::auto(big.len()) else {
        panic!("auto above the crossover must be IVF");
    };
    let ivf = IvfIndex::build(big.clone(), nlist, nprobe, 13).unwrap();
    check(&ivf, &big, 10);
}
