use crate::{Embeddings, KnnError};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// A fitted k-means model: centroids plus per-point assignments.
///
/// Serves two roles in the reproduction: the coarse quantizer of the
/// [`crate::IvfIndex`] (ScaNN's partitioning stage) and the simulated
/// "coarsely-trained classifier" the data crate uses to derive margin
/// utilities (§6 trains a ResNet-56 on a 10 % subset for this).
#[derive(Clone, Debug)]
pub struct KMeansModel {
    centroids: Embeddings,
    /// Squared centroid norms, cached once at model build so nearest-
    /// centroid queries rank by `‖c‖² − 2⟨c, q⟩` (the `‖q‖²` term is
    /// constant per query) instead of re-deriving centroid norms — the
    /// same hoist the search kernels apply to row norms.
    centroid_sq_norms: Vec<f32>,
    assignments: Vec<u32>,
    inertia: f64,
    iterations_run: usize,
}

impl KMeansModel {
    /// The cluster centroids (`k × d`).
    pub fn centroids(&self) -> &Embeddings {
        &self.centroids
    }

    /// Cluster index of each input point.
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// Final within-cluster sum of squared distances.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Number of Lloyd iterations actually run (stops early on
    /// convergence).
    pub fn iterations_run(&self) -> usize {
        self.iterations_run
    }

    /// Index of the centroid nearest to `query`.
    ///
    /// # Panics
    ///
    /// Panics if `query` has the wrong dimension.
    pub fn nearest_centroid(&self, query: &[f32]) -> u32 {
        self.nearest_centroids(query, 1)[0]
    }

    /// Indices of the `p` centroids nearest to `query`, closest first.
    ///
    /// Centroids are ranked by `‖c‖² − 2⟨c, q⟩` (equivalent to squared
    /// L2 distance up to the per-query constant `‖q‖²`): the dot
    /// products come from the blocked batch kernel and the squared norms
    /// were cached at model build, so nothing about a centroid is
    /// recomputed per query.
    ///
    /// # Panics
    ///
    /// Panics if `query` has the wrong dimension.
    pub fn nearest_centroids(&self, query: &[f32], p: usize) -> Vec<u32> {
        assert_eq!(query.len(), self.centroids.dim(), "query dimension mismatch");
        let dots = submod_kernels::dot_scores(query, self.centroids.as_flat());
        assert!(dots.iter().all(|d| !d.is_nan()), "centroid scores must not be NaN");
        let score = |c: usize| self.centroid_sq_norms[c] - 2.0 * dots[c];
        if p <= 1 {
            // Argmin with strict `<`: the first minimum (smallest index)
            // wins, matching the stable sort below.
            let mut best = (0usize, f32::INFINITY);
            for c in 0..dots.len() {
                let s = score(c);
                if s < best.1 {
                    best = (c, s);
                }
            }
            return vec![best.0 as u32];
        }
        let mut scored: Vec<(f32, u32)> = (0..dots.len()).map(|c| (score(c), c as u32)).collect();
        // Workspace convention (cf. dist::bounding): total order on the
        // score with an explicit index tie-break, so equal distances rank
        // deterministically by centroid id.
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        scored.into_iter().take(p).map(|(_, c)| c).collect()
    }
}

/// Fits k-means with k-means++ seeding and Lloyd iterations.
///
/// Deterministic for a fixed `seed`. Empty clusters are re-seeded from the
/// point farthest from its centroid.
///
/// # Errors
///
/// Returns an error if `k == 0`, `iterations == 0`, or there are fewer
/// points than clusters.
///
/// ```
/// use submod_knn::{kmeans, Embeddings};
///
/// # fn main() -> Result<(), submod_knn::KnnError> {
/// let data = Embeddings::from_rows(1, &[&[0.0], &[0.1], &[10.0], &[10.1]])?;
/// let model = kmeans(&data, 2, 10, 42)?;
/// // The two tight pairs end up in distinct clusters.
/// assert_ne!(model.assignments()[0], model.assignments()[2]);
/// assert_eq!(model.assignments()[0], model.assignments()[1]);
/// # Ok(())
/// # }
/// ```
pub fn kmeans(
    data: &Embeddings,
    k: usize,
    iterations: usize,
    seed: u64,
) -> Result<KMeansModel, KnnError> {
    if k == 0 {
        return Err(KnnError::EmptyParameter { name: "k" });
    }
    if iterations == 0 {
        return Err(KnnError::EmptyParameter { name: "iterations" });
    }
    let n = data.len();
    if n < k {
        return Err(KnnError::EmptyParameter { name: "points (need at least k)" });
    }
    let dim = data.dim();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    // --- k-means++ seeding (on a sample for large n). ---
    let sample: Vec<usize> = if n > 20_000 {
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(&mut rng);
        ids.truncate(20_000.max(k));
        ids
    } else {
        (0..n).collect()
    };
    let mut centers: Vec<usize> = Vec::with_capacity(k);
    centers.push(sample[rng.gen_range(0..sample.len())]);
    let mut dist_sq: Vec<f32> = sample
        .iter()
        .map(|&i| crate::distance::l2_distance_squared(data.row(i), data.row(centers[0])))
        .collect();
    while centers.len() < k {
        let total: f64 = dist_sq.iter().map(|&d| f64::from(d)).sum();
        let next = if total <= f64::MIN_POSITIVE {
            // Degenerate: all mass at the centers; pick any non-center.
            sample[rng.gen_range(0..sample.len())]
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = sample[sample.len() - 1];
            for (pos, &i) in sample.iter().enumerate() {
                target -= f64::from(dist_sq[pos]);
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centers.push(next);
        for (pos, &i) in sample.iter().enumerate() {
            let d = crate::distance::l2_distance_squared(data.row(i), data.row(next));
            if d < dist_sq[pos] {
                dist_sq[pos] = d;
            }
        }
    }
    let mut centroids: Vec<f32> = Vec::with_capacity(k * dim);
    for &c in &centers {
        centroids.extend_from_slice(data.row(c));
    }

    // --- Lloyd iterations. ---
    let mut assignments = vec![0u32; n];
    let mut inertia = f64::INFINITY;
    let mut iterations_run = 0;
    for _ in 0..iterations {
        iterations_run += 1;
        // Assignment step (parallel): each point scans the centroid
        // matrix blockwise, four centroids per micro-kernel pass.
        let new_assignments: Vec<(u32, f32)> = (0..n)
            .into_par_iter()
            .map(|i| submod_kernels::l2_argmin(data.row(i), &centroids))
            .collect();
        assert!(
            new_assignments.iter().all(|&(_, d)| !d.is_nan()),
            "assignment distances must not be NaN"
        );
        let new_inertia: f64 = new_assignments.iter().map(|&(_, d)| f64::from(d)).sum();
        for (i, &(c, _)) in new_assignments.iter().enumerate() {
            assignments[i] = c;
        }

        // Update step.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0u64; k];
        for (i, &(c, _)) in new_assignments.iter().enumerate() {
            let row = data.row(i);
            let base = c as usize * dim;
            for (d, &x) in row.iter().enumerate() {
                sums[base + d] += f64::from(x);
            }
            counts[c as usize] += 1;
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the worst-fit point. Total
                // order plus reversed index tie-break: among equally bad
                // points the smallest index compares greatest, so it wins
                // deterministically.
                let worst = new_assignments
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1).then(b.0.cmp(&a.0)))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                centroids[c * dim..(c + 1) * dim].copy_from_slice(data.row(worst));
            } else {
                for d in 0..dim {
                    centroids[c * dim + d] = (sums[c * dim + d] / counts[c] as f64) as f32;
                }
            }
        }

        // Convergence: relative inertia improvement below 1e-4.
        if new_inertia >= inertia * (1.0 - 1e-4) {
            inertia = new_inertia.min(inertia);
            break;
        }
        inertia = new_inertia;
    }

    let centroids = Embeddings::from_flat(dim, centroids)?;
    let centroid_sq_norms = (0..centroids.len())
        .map(|c| submod_kernels::dot(centroids.row(c), centroids.row(c)))
        .collect();
    Ok(KMeansModel { centroids, centroid_sq_norms, assignments, inertia, iterations_run })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per_cluster: usize, centers: &[(f32, f32)], seed: u64) -> Embeddings {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut flat = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per_cluster {
                flat.push(cx + rng.gen_range(-0.1f32..0.1));
                flat.push(cy + rng.gen_range(-0.1f32..0.1));
            }
        }
        Embeddings::from_flat(2, flat).unwrap()
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let data = blobs(50, &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 1);
        let model = kmeans(&data, 3, 50, 7).unwrap();
        // All points of one blob share an assignment.
        for blob in 0..3 {
            let first = model.assignments()[blob * 50];
            for i in 0..50 {
                assert_eq!(model.assignments()[blob * 50 + i], first, "blob {blob}");
            }
        }
        assert!(model.inertia() < 50.0 * 3.0 * 0.02 + 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blobs(30, &[(0.0, 0.0), (5.0, 5.0)], 3);
        let a = kmeans(&data, 2, 20, 99).unwrap();
        let b = kmeans(&data, 2, 20, 99).unwrap();
        assert_eq!(a.assignments(), b.assignments());
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn nearest_centroid_queries() {
        let data = blobs(20, &[(0.0, 0.0), (10.0, 10.0)], 5);
        let model = kmeans(&data, 2, 20, 1).unwrap();
        let near_origin = model.nearest_centroid(&[0.2, -0.1]);
        let near_far = model.nearest_centroid(&[9.8, 10.1]);
        assert_ne!(near_origin, near_far);
        let both = model.nearest_centroids(&[5.0, 5.0], 2);
        assert_eq!(both.len(), 2);
    }

    #[test]
    fn argument_validation() {
        let data = blobs(5, &[(0.0, 0.0)], 1);
        assert!(kmeans(&data, 0, 10, 0).is_err());
        assert!(kmeans(&data, 3, 0, 0).is_err());
        assert!(kmeans(&data, 100, 10, 0).is_err());
    }

    #[test]
    fn k_equals_n_converges() {
        let data = blobs(1, &[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)], 2);
        let model = kmeans(&data, 3, 10, 4).unwrap();
        let mut assigned: Vec<u32> = model.assignments().to_vec();
        assigned.sort_unstable();
        assigned.dedup();
        assert_eq!(assigned.len(), 3, "each point its own cluster");
        assert!(model.inertia() < 1e-6);
    }
}
