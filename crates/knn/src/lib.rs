//! k-nearest-neighbor graph construction for subset selection.
//!
//! The paper (§6) builds a 10-NN cosine-similarity graph over model
//! embeddings with ScaNN, symmetrizes it, and feeds it to the pairwise
//! submodular objective. This crate is the reproduction's ANN substrate:
//!
//! - [`Embeddings`] — a dense row-major `n × d` matrix of `f32` vectors.
//! - [`ExactKnn`] — brute-force exact search (the small-dataset reference).
//! - [`IvfIndex`] — an inverted-file index over a k-means coarse quantizer
//!   (the same coarse-quantization family ScaNN belongs to).
//! - [`LshIndex`] — random-hyperplane locality-sensitive hashing.
//! - [`build_knn_graph`] — directed top-k search + symmetrization into a
//!   [`submod_core::SimilarityGraph`], with edge weights set to cosine
//!   similarity clamped to `[0, 1]` (the objective requires non-negative
//!   similarities, §3).
//! - [`cache`] — a binary disk cache so experiment sweeps build each graph
//!   once.
//!
//! All distance arithmetic dispatches through `submod_kernels` (AVX2 /
//! NEON / scalar, selected at runtime, `SUBMOD_KERNELS=scalar` to force
//! the fallback); the graph build issues query *blocks* across the
//! `submod_exec` pool and every backend's batched search is
//! bitwise-identical to its one-query-at-a-time scan.
//!
//! # Example
//!
//! ```
//! use submod_knn::{build_knn_graph, Embeddings, KnnBackend};
//!
//! # fn main() -> Result<(), submod_knn::KnnError> {
//! // Four points in 2-D: two tight pairs.
//! let embeddings = Embeddings::from_rows(2, &[
//!     &[1.0, 0.0], &[0.99, 0.01], &[0.0, 1.0], &[0.01, 0.99],
//! ])?;
//! let graph = build_knn_graph(&embeddings, 1, &KnnBackend::Exact, 0)?;
//! assert_eq!(graph.num_nodes(), 4);
//! assert!(graph.is_symmetric());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod brute;
mod builder;
pub mod cache;
mod distance;
mod embeddings;
mod error;
mod ivf;
mod kmeans;
mod lsh;

pub use brute::ExactKnn;
pub use builder::{build_knn_graph, build_knn_graph_store, KnnBackend, AUTO_EXACT_MAX_POINTS};
pub use distance::{cosine_similarity, dot, l2_distance_squared, norm};
pub use embeddings::Embeddings;
pub use error::KnnError;
pub use ivf::IvfIndex;
pub use kmeans::{kmeans, KMeansModel};
pub use lsh::LshIndex;

/// A scored neighbor: `(point index, cosine similarity)`.
pub type Neighbor = (u32, f32);

/// Common interface over the exact and approximate search backends.
pub trait NearestNeighbors {
    /// Returns up to `k` most-similar points to `query` (excluding the
    /// query itself when it is part of the indexed data), ordered by
    /// decreasing similarity.
    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor>;

    /// Like [`Self::search`], but excludes `exclude` from the results
    /// (used when querying with an indexed point).
    fn search_excluding(&self, query: &[f32], k: usize, exclude: u32) -> Vec<Neighbor> {
        self.search(query, k + 1).into_iter().filter(|&(id, _)| id != exclude).take(k).collect()
    }

    /// Searches a whole block of queries at once, returning one result
    /// list per query in input order.
    ///
    /// Backends with a batched kernel (the exact scan) override this to
    /// stream the row matrix once per query block; the default simply
    /// loops, so results are **always** identical to per-query
    /// [`Self::search`] calls — batching is a throughput contract, never
    /// a semantic one.
    fn search_batch(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<Neighbor>> {
        queries.iter().map(|q| self.search(q, k)).collect()
    }

    /// Batched [`Self::search_excluding`]: `excludes[i]` is skipped in
    /// query `i`'s results (`u32::MAX` for none).
    ///
    /// # Panics
    ///
    /// Panics if `excludes.len() != queries.len()`.
    fn search_batch_excluding(
        &self,
        queries: &[&[f32]],
        k: usize,
        excludes: &[u32],
    ) -> Vec<Vec<Neighbor>> {
        assert_eq!(queries.len(), excludes.len(), "one exclude per query");
        queries.iter().zip(excludes).map(|(q, &e)| self.search_excluding(q, k, e)).collect()
    }
}
