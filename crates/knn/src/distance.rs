//! Vector distance kernels.
//!
//! Written as chunked scalar loops the compiler auto-vectorizes; `f32`
//! accumulation in four lanes keeps the kernels fast without `unsafe`.

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// ```
/// assert_eq!(submod_knn::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot of mismatched lengths");
    let mut lanes = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let off = i * 4;
        for l in 0..4 {
            lanes[l] += a[off + l] * b[off + l];
        }
    }
    let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Euclidean norm of a vector.
///
/// ```
/// assert_eq!(submod_knn::norm(&[3.0, 4.0]), 5.0);
/// ```
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn l2_distance_squared(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "distance of mismatched lengths");
    let mut lanes = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let off = i * 4;
        for l in 0..4 {
            let d = a[off + l] - b[off + l];
            lanes[l] += d * d;
        }
    }
    let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Cosine similarity in `[-1, 1]`; 0 when either vector has zero norm.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// ```
/// let sim = submod_knn::cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]);
/// assert!((sim - 1.0).abs() < 1e-6);
/// ```
#[inline]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let denom = norm(a) * norm(b);
    if denom <= f32::MIN_POSITIVE {
        return 0.0;
    }
    (dot(a, b) / denom).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_handles_remainders() {
        // Length 7 exercises both the 4-lane body and the tail.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let b = [7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(dot(&a, &b), 84.0);
    }

    #[test]
    fn norm_of_pythagorean_triple() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn l2_matches_expansion() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 2.0, 2.0, 2.0, 2.0];
        // (1)²+(0)²+(1)²+(2)²+(3)² = 15
        assert!((l2_distance_squared(&a, &b) - 15.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_extremes() {
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_lengths_panic() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
