//! Vector distance kernels — thin façade over [`submod_kernels`].
//!
//! The arithmetic lives in the kernels crate: explicit AVX2/NEON SIMD
//! with runtime dispatch and a scalar fallback in the same fixed 8-lane
//! reduction order, so every path returns bitwise-identical `f32`s (see
//! the `submod_kernels` crate docs for the determinism contract). These
//! re-exports keep the historical `submod_knn::{dot, norm, …}` API.

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// ```
/// assert_eq!(submod_knn::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    submod_kernels::dot(a, b)
}

/// Euclidean norm of a vector.
///
/// ```
/// assert_eq!(submod_knn::norm(&[3.0, 4.0]), 5.0);
/// ```
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    submod_kernels::norm(a)
}

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn l2_distance_squared(a: &[f32], b: &[f32]) -> f32 {
    submod_kernels::l2_distance_squared(a, b)
}

/// Cosine similarity in `[-1, 1]`; 0 when either vector has zero norm.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// ```
/// let sim = submod_knn::cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]);
/// assert!((sim - 1.0).abs() < 1e-6);
/// ```
#[inline]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let denom = norm(a) * norm(b);
    if denom <= f32::MIN_POSITIVE {
        return 0.0;
    }
    (dot(a, b) / denom).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_handles_remainders() {
        // Length 7 stays entirely in the reduction tail.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let b = [7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(dot(&a, &b), 84.0);
        // Length 11 exercises the 8-lane body plus the tail.
        let c = [1.0f32; 11];
        assert_eq!(dot(&c, &c), 11.0);
    }

    #[test]
    fn norm_of_pythagorean_triple() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn l2_matches_expansion() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 2.0, 2.0, 2.0, 2.0];
        // (1)²+(0)²+(1)²+(2)²+(3)² = 15
        assert!((l2_distance_squared(&a, &b) - 15.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_extremes() {
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_lengths_panic() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
