//! Disk cache for similarity graphs, backed by the on-disk CSR store.
//!
//! The experiment harness sweeps hundreds of `(partitions, rounds, α)`
//! configurations over the *same* k-NN graph; rebuilding a 50 k-point exact
//! graph each time would dominate the run. The cache persists the graph
//! plus its aligned utility vector as one `submod_core::store` file keyed
//! by an experiment-chosen name, and loads it back **memory-mapped**: a
//! cache hit costs one validation sweep instead of a rebuild, the CSR
//! arrays stay out of the process heap, and every shard of a distributed
//! run shares the same read-only mapping.
//!
//! Files written by the pre-store cache format (magic `SUBMODG1`) fail
//! validation with [`submod_core::GraphError::BadMagic`] and are rebuilt
//! transparently by [`load_or_build`].

use crate::KnnError;
use std::fs;
use std::path::{Path, PathBuf};
use submod_core::SimilarityGraph;

/// Returns the default cache directory (`target/graph-cache` under the
/// workspace, or the system temp dir as fallback).
pub fn default_cache_dir() -> PathBuf {
    let target = Path::new("target");
    if target.exists() {
        target.join("graph-cache")
    } else {
        std::env::temp_dir().join("submod-graph-cache")
    }
}

/// Saves a graph and its aligned utility vector under `path` as a store
/// file.
///
/// # Errors
///
/// Returns an error if the file cannot be written or the utilities do not
/// align with the graph (count mismatch or non-finite values).
pub fn save_graph(path: &Path, graph: &SimilarityGraph, utilities: &[f32]) -> Result<(), KnnError> {
    graph.write_store_with_utilities(path, utilities)?;
    Ok(())
}

/// Loads a graph and utility vector previously written by [`save_graph`],
/// memory-mapping the CSR arrays.
///
/// # Errors
///
/// Returns an error if the file is missing, truncated, corrupt, or fails
/// CSR validation (see [`submod_core::GraphError`]).
pub fn load_graph(path: &Path) -> Result<(SimilarityGraph, Vec<f32>), KnnError> {
    let (graph, utilities) = SimilarityGraph::open_store_with_utilities(path)?;
    Ok((graph, utilities))
}

/// Loads the cache at `path` or builds and saves it with `build`.
///
/// Both paths return the **mapped** graph: after a cache miss the freshly
/// built graph is written to disk and reopened through the store, so a run
/// behaves identically whether or not the cache already existed.
///
/// # Errors
///
/// Propagates build and I/O errors; a corrupt cache file is rebuilt rather
/// than failing.
pub fn load_or_build<F>(path: &Path, build: F) -> Result<(SimilarityGraph, Vec<f32>), KnnError>
where
    F: FnOnce() -> Result<(SimilarityGraph, Vec<f32>), KnnError>,
{
    if path.exists() {
        match load_graph(path) {
            Ok(loaded) => {
                submod_obs::counter!("knn.cache.hits").incr();
                return Ok(loaded);
            }
            Err(_) => {
                // Corrupt or stale: fall through and rebuild.
                let _ = fs::remove_file(path);
            }
        }
    }
    submod_obs::counter!("knn.cache.misses").incr();
    let (graph, utilities) = build()?;
    save_graph(path, &graph, &utilities)?;
    load_graph(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use submod_core::GraphBuilder;

    fn sample_graph() -> (SimilarityGraph, Vec<f32>) {
        let mut b = GraphBuilder::new(4);
        b.add_undirected(0, 1, 0.5).unwrap();
        b.add_undirected(2, 3, 0.25).unwrap();
        b.add_undirected(0, 3, 0.75).unwrap();
        (b.build(), vec![0.1, 0.2, 0.3, 0.4])
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("submod-cache-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip() {
        let (graph, utilities) = sample_graph();
        let path = temp_path("roundtrip.bin");
        save_graph(&path, &graph, &utilities).unwrap();
        let (loaded_graph, loaded_utilities) = load_graph(&path).unwrap();
        assert_eq!(loaded_graph, graph);
        assert_eq!(loaded_utilities, utilities);
        assert!(loaded_graph.is_mapped(), "cache hits must be zero-copy mapped");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn mismatched_utilities_rejected() {
        let (graph, _) = sample_graph();
        let path = temp_path("mismatch.bin");
        assert!(save_graph(&path, &graph, &[0.0; 2]).is_err());
    }

    #[test]
    fn corrupt_file_is_detected() {
        let path = temp_path("corrupt.bin");
        fs::write(&path, b"definitely not a graph").unwrap();
        assert!(load_graph(&path).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn pre_store_cache_format_is_rejected() {
        // The old cache format started with SUBMODG1; it must surface as a
        // typed store error (and therefore be rebuilt by load_or_build).
        let path = temp_path("old-format.bin");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SUBMODG1");
        bytes.extend_from_slice(&[0u8; 64]);
        fs::write(&path, &bytes).unwrap();
        match load_graph(&path) {
            Err(KnnError::Store(submod_core::GraphError::BadMagic { found })) => {
                assert_eq!(&found, b"SUBMODG1");
            }
            other => panic!("expected BadMagic, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn load_or_build_builds_once() {
        let path = temp_path("build-once.bin");
        let _ = fs::remove_file(&path);
        let mut builds = 0;
        let (g1, _) = load_or_build(&path, || {
            builds += 1;
            Ok(sample_graph())
        })
        .unwrap();
        let (g2, _) = load_or_build(&path, || {
            builds += 1;
            Ok(sample_graph())
        })
        .unwrap();
        assert_eq!(builds, 1, "second call must hit the cache");
        assert_eq!(g1, g2);
        assert!(g1.is_mapped() && g2.is_mapped(), "both paths must return the mapped graph");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn load_or_build_recovers_from_corruption() {
        let path = temp_path("recover.bin");
        fs::write(&path, b"garbage").unwrap();
        let (graph, _) = load_or_build(&path, || Ok(sample_graph())).unwrap();
        assert_eq!(graph.num_nodes(), 4);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_graph(&temp_path("missing.bin")).is_err());
    }
}
