//! Binary disk cache for similarity graphs.
//!
//! The experiment harness sweeps hundreds of `(partitions, rounds, α)`
//! configurations over the *same* k-NN graph; rebuilding a 50 k-point exact
//! graph each time would dominate the run. The cache persists the CSR
//! arrays (plus the utility vector) in a versioned little-endian format
//! keyed by an experiment-chosen name.

use crate::KnnError;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use submod_core::{NodeId, SimilarityGraph};

const MAGIC: &[u8; 8] = b"SUBMODG1";

/// Returns the default cache directory (`target/graph-cache` under the
/// workspace, or the system temp dir as fallback).
pub fn default_cache_dir() -> PathBuf {
    let target = Path::new("target");
    if target.exists() {
        target.join("graph-cache")
    } else {
        std::env::temp_dir().join("submod-graph-cache")
    }
}

/// Saves a graph and its aligned utility vector under `path`.
///
/// # Errors
///
/// Returns an error if the file cannot be written or the utilities do not
/// align with the graph.
pub fn save_graph(path: &Path, graph: &SimilarityGraph, utilities: &[f32]) -> Result<(), KnnError> {
    if utilities.len() != graph.num_nodes() {
        return Err(KnnError::Cache {
            detail: format!(
                "{} utilities for a graph of {} nodes",
                utilities.len(),
                graph.num_nodes()
            ),
        });
    }
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| KnnError::io("creating cache directory", e))?;
    }
    let file = File::create(path).map_err(|e| KnnError::io("creating cache file", e))?;
    let mut w = BufWriter::new(file);
    let (offsets, neighbors, weights) = graph.csr_parts();

    let write_u64 = |w: &mut BufWriter<File>, x: u64| {
        w.write_all(&x.to_le_bytes()).map_err(|e| KnnError::io("writing cache", e))
    };
    w.write_all(MAGIC).map_err(|e| KnnError::io("writing cache magic", e))?;
    write_u64(&mut w, graph.num_nodes() as u64)?;
    write_u64(&mut w, neighbors.len() as u64)?;
    for &o in offsets {
        write_u64(&mut w, o as u64)?;
    }
    for &n in neighbors {
        write_u64(&mut w, n.raw())?;
    }
    for &x in weights {
        w.write_all(&x.to_le_bytes()).map_err(|e| KnnError::io("writing cache weights", e))?;
    }
    for &u in utilities {
        w.write_all(&u.to_le_bytes()).map_err(|e| KnnError::io("writing cache utilities", e))?;
    }
    w.flush().map_err(|e| KnnError::io("flushing cache file", e))?;
    Ok(())
}

/// Loads a graph and utility vector previously written by [`save_graph`].
///
/// # Errors
///
/// Returns an error if the file is missing, truncated, or fails CSR
/// validation.
pub fn load_graph(path: &Path) -> Result<(SimilarityGraph, Vec<f32>), KnnError> {
    let file = File::open(path).map_err(|e| KnnError::io("opening cache file", e))?;
    let mut r = BufReader::new(file);

    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(|e| KnnError::io("reading cache magic", e))?;
    if &magic != MAGIC {
        return Err(KnnError::Cache { detail: "bad magic (not a graph cache file)".into() });
    }
    let read_u64 = |r: &mut BufReader<File>| -> Result<u64, KnnError> {
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf).map_err(|e| KnnError::io("reading cache", e))?;
        Ok(u64::from_le_bytes(buf))
    };
    let num_nodes = read_u64(&mut r)? as usize;
    let num_edges = read_u64(&mut r)? as usize;

    let mut offsets = Vec::with_capacity(num_nodes + 1);
    for _ in 0..=num_nodes {
        offsets.push(read_u64(&mut r)? as usize);
    }
    let mut neighbors = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        neighbors.push(NodeId::new(read_u64(&mut r)?));
    }
    let mut weights = Vec::with_capacity(num_edges);
    let mut f32_buf = [0u8; 4];
    for _ in 0..num_edges {
        r.read_exact(&mut f32_buf).map_err(|e| KnnError::io("reading cache weights", e))?;
        weights.push(f32::from_le_bytes(f32_buf));
    }
    let mut utilities = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        r.read_exact(&mut f32_buf).map_err(|e| KnnError::io("reading cache utilities", e))?;
        utilities.push(f32::from_le_bytes(f32_buf));
    }

    let graph = SimilarityGraph::from_csr_parts(offsets, neighbors, weights)?;
    Ok((graph, utilities))
}

/// Loads the cache at `path` or builds and saves it with `build`.
///
/// # Errors
///
/// Propagates build and I/O errors; a corrupt cache file is rebuilt rather
/// than failing.
pub fn load_or_build<F>(path: &Path, build: F) -> Result<(SimilarityGraph, Vec<f32>), KnnError>
where
    F: FnOnce() -> Result<(SimilarityGraph, Vec<f32>), KnnError>,
{
    if path.exists() {
        match load_graph(path) {
            Ok(loaded) => return Ok(loaded),
            Err(_) => {
                // Corrupt or stale: fall through and rebuild.
                let _ = fs::remove_file(path);
            }
        }
    }
    let (graph, utilities) = build()?;
    save_graph(path, &graph, &utilities)?;
    Ok((graph, utilities))
}

#[cfg(test)]
mod tests {
    use super::*;
    use submod_core::GraphBuilder;

    fn sample_graph() -> (SimilarityGraph, Vec<f32>) {
        let mut b = GraphBuilder::new(4);
        b.add_undirected(0, 1, 0.5).unwrap();
        b.add_undirected(2, 3, 0.25).unwrap();
        b.add_undirected(0, 3, 0.75).unwrap();
        (b.build(), vec![0.1, 0.2, 0.3, 0.4])
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("submod-cache-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip() {
        let (graph, utilities) = sample_graph();
        let path = temp_path("roundtrip.bin");
        save_graph(&path, &graph, &utilities).unwrap();
        let (loaded_graph, loaded_utilities) = load_graph(&path).unwrap();
        assert_eq!(loaded_graph, graph);
        assert_eq!(loaded_utilities, utilities);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn mismatched_utilities_rejected() {
        let (graph, _) = sample_graph();
        let path = temp_path("mismatch.bin");
        assert!(save_graph(&path, &graph, &[0.0; 2]).is_err());
    }

    #[test]
    fn corrupt_file_is_detected() {
        let path = temp_path("corrupt.bin");
        fs::write(&path, b"definitely not a graph").unwrap();
        assert!(load_graph(&path).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn load_or_build_builds_once() {
        let path = temp_path("build-once.bin");
        let _ = fs::remove_file(&path);
        let mut builds = 0;
        let (g1, _) = load_or_build(&path, || {
            builds += 1;
            Ok(sample_graph())
        })
        .unwrap();
        let (g2, _) = load_or_build(&path, || {
            builds += 1;
            Ok(sample_graph())
        })
        .unwrap();
        assert_eq!(builds, 1, "second call must hit the cache");
        assert_eq!(g1, g2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn load_or_build_recovers_from_corruption() {
        let path = temp_path("recover.bin");
        fs::write(&path, b"garbage").unwrap();
        let (graph, _) = load_or_build(&path, || Ok(sample_graph())).unwrap();
        assert_eq!(graph.num_nodes(), 4);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_graph(&temp_path("missing.bin")).is_err());
    }
}
