use crate::kmeans::{kmeans, KMeansModel};
use crate::{Embeddings, KnnError, NearestNeighbors, Neighbor};
use std::sync::Arc;

/// An inverted-file (IVF) approximate nearest-neighbor index.
///
/// Points are partitioned by a k-means coarse quantizer into `nlist`
/// cells; a query scans only the `nprobe` nearest cells. This is the same
/// partition-then-scan architecture the paper's similarity search
/// (ScaNN, Guo et al. 2020) uses for its coarse stage, and it is the
/// backend the experiments use for the ImageNet-scale graphs.
///
/// ```
/// use submod_knn::{Embeddings, IvfIndex, NearestNeighbors};
/// use rand::{Rng, SeedableRng};
///
/// # fn main() -> Result<(), submod_knn::KnnError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let flat: Vec<f32> = (0..512).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
/// let data = Embeddings::from_flat(2, flat)?;
/// let index = IvfIndex::build(data, 8, 3, 9)?;
/// assert_eq!(index.search(&[0.5, 0.5], 5).len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct IvfIndex {
    data: Arc<Embeddings>,
    quantizer: KMeansModel,
    lists: Vec<Vec<u32>>,
    nprobe: usize,
}

impl IvfIndex {
    /// Builds an IVF index with `nlist` cells, probing `nprobe` cells per
    /// query.
    ///
    /// # Errors
    ///
    /// Returns an error if the embeddings are empty, `nlist == 0`,
    /// `nprobe == 0`, or there are fewer points than cells.
    pub fn build(
        data: Embeddings,
        nlist: usize,
        nprobe: usize,
        seed: u64,
    ) -> Result<Self, KnnError> {
        if data.is_empty() {
            return Err(KnnError::EmptyParameter { name: "embeddings" });
        }
        if nlist == 0 {
            return Err(KnnError::EmptyParameter { name: "nlist" });
        }
        if nprobe == 0 {
            return Err(KnnError::EmptyParameter { name: "nprobe" });
        }
        let quantizer = kmeans(&data, nlist, 25, seed)?;
        let mut lists = vec![Vec::new(); nlist];
        for (i, &cell) in quantizer.assignments().iter().enumerate() {
            lists[cell as usize].push(i as u32);
        }
        Ok(IvfIndex { data: Arc::new(data), quantizer, lists, nprobe: nprobe.min(nlist) })
    }

    /// A sensible default cell count: `√n` clamped to `[1, 4096]`.
    pub fn default_nlist(n: usize) -> usize {
        ((n as f64).sqrt().round() as usize).clamp(1, 4096)
    }

    /// The indexed embeddings.
    pub fn embeddings(&self) -> &Embeddings {
        &self.data
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Cells probed per query.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }
}

impl NearestNeighbors for IvfIndex {
    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_excluding(query, k, u32::MAX)
    }

    fn search_excluding(&self, query: &[f32], k: usize, exclude: u32) -> Vec<Neighbor> {
        // Probe enough cells to gather at least k candidates, starting from
        // nprobe and widening if cells are sparse. The gathered candidate
        // list feeds the blocked ranking kernel in probe order.
        let mut probes = self.nprobe;
        let mut candidates: Vec<u32> = Vec::new();
        loop {
            let cells = self.quantizer.nearest_centroids(query, probes);
            candidates.clear();
            for &c in &cells {
                candidates.extend_from_slice(&self.lists[c as usize]);
            }
            let hits = crate::brute::rank_candidates(&self.data, query, &candidates, k, exclude);
            if hits.len() >= k.min(self.data.len().saturating_sub(1)) || probes >= self.nlist() {
                return hits;
            }
            probes = (probes * 2).min(self.nlist());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactKnn;
    use rand::{Rng, SeedableRng};

    fn clustered(n_clusters: usize, per_cluster: usize, dim: usize, seed: u64) -> Embeddings {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..n_clusters)
            .map(|_| (0..dim).map(|_| rng.gen_range(-5.0..5.0f32)).collect())
            .collect();
        let mut flat = Vec::new();
        for c in &centers {
            for _ in 0..per_cluster {
                for &x in c {
                    flat.push(x + rng.gen_range(-0.2f32..0.2));
                }
            }
        }
        Embeddings::from_flat(dim, flat).unwrap()
    }

    #[test]
    fn recall_against_exact_on_clustered_data() {
        let data = clustered(10, 100, 8, 3);
        let exact = ExactKnn::build(data.clone()).unwrap();
        let ivf = IvfIndex::build(data.clone(), 10, 3, 3).unwrap();
        let mut hits = 0usize;
        let mut total = 0usize;
        for q in (0..data.len()).step_by(17) {
            let truth: Vec<u32> = exact
                .search_excluding(data.row(q), 10, q as u32)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            let approx: Vec<u32> = ivf
                .search_excluding(data.row(q), 10, q as u32)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            total += truth.len();
            hits += truth.iter().filter(|t| approx.contains(t)).count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall > 0.9, "IVF recall {recall} too low on clustered data");
    }

    #[test]
    fn widens_probes_when_cells_are_small() {
        let data = clustered(5, 3, 4, 9);
        let ivf = IvfIndex::build(data.clone(), 5, 1, 9).unwrap();
        // k close to n forces probing beyond the first cell.
        let hits = ivf.search(data.row(0), 12);
        assert!(hits.len() >= 12.min(data.len() - 1) - 2);
    }

    #[test]
    fn parameter_validation() {
        let data = clustered(2, 5, 4, 1);
        assert!(IvfIndex::build(data.clone(), 0, 1, 0).is_err());
        assert!(IvfIndex::build(data.clone(), 2, 0, 0).is_err());
        assert!(IvfIndex::build(Embeddings::from_flat(4, vec![]).unwrap(), 2, 1, 0).is_err());
    }

    #[test]
    fn default_nlist_scales() {
        assert_eq!(IvfIndex::default_nlist(100), 10);
        assert_eq!(IvfIndex::default_nlist(1), 1);
        assert_eq!(IvfIndex::default_nlist(100_000_000), 4096);
    }
}
