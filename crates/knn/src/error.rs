use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Errors produced while building k-NN indexes and graphs.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum KnnError {
    /// A vector's length did not match the embedding dimension.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Observed vector length.
        got: usize,
    },
    /// A parameter that must be positive was zero (e.g. `dim`, `k`).
    EmptyParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// An embedding contained NaN or infinity.
    NonFiniteValue {
        /// Row of the offending value.
        row: usize,
    },
    /// The graph cache file was missing, unreadable, or corrupt.
    Cache {
        /// Description of the failure.
        detail: String,
    },
    /// Graph assembly failed in the core layer.
    Graph(submod_core::CoreError),
    /// The on-disk graph store rejected a cache file (corrupt, foreign, or
    /// truncated) or failed to write one.
    Store(submod_core::GraphError),
    /// An I/O failure while reading or writing a cache file.
    Io {
        /// What was being done.
        context: &'static str,
        /// Underlying error (shared to stay `Clone`).
        source: Arc<std::io::Error>,
    },
}

impl fmt::Display for KnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnnError::DimensionMismatch { expected, got } => {
                write!(f, "vector of length {got} does not match dimension {expected}")
            }
            KnnError::EmptyParameter { name } => {
                write!(f, "parameter `{name}` must be positive")
            }
            KnnError::NonFiniteValue { row } => {
                write!(f, "embedding row {row} contains a non-finite value")
            }
            KnnError::Cache { detail } => write!(f, "graph cache failure: {detail}"),
            KnnError::Graph(inner) => write!(f, "graph assembly failure: {inner}"),
            KnnError::Store(inner) => write!(f, "graph store failure: {inner}"),
            KnnError::Io { context, source } => {
                write!(f, "i/o failure while {context}: {source}")
            }
        }
    }
}

impl Error for KnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KnnError::Graph(inner) => Some(inner),
            KnnError::Store(inner) => Some(inner),
            KnnError::Io { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<submod_core::CoreError> for KnnError {
    fn from(err: submod_core::CoreError) -> Self {
        KnnError::Graph(err)
    }
}

impl From<submod_core::GraphError> for KnnError {
    fn from(err: submod_core::GraphError) -> Self {
        KnnError::Store(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = KnnError::DimensionMismatch { expected: 64, got: 32 };
        assert!(err.to_string().contains("64") && err.to_string().contains("32"));
    }

    #[test]
    fn core_errors_convert() {
        let core = submod_core::CoreError::SelfLoop { node: 3 };
        let knn: KnnError = core.into();
        assert!(knn.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<KnnError>();
    }
}
