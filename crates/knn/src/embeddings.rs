use crate::KnnError;

/// A dense row-major matrix of `n` embedding vectors of dimension `d`.
///
/// The paper's pipelines extract penultimate-layer features (64-d for
/// CIFAR-100, 2048-d for ImageNet, §6); this type is their in-memory form.
/// Row norms are precomputed once so cosine similarities cost one dot
/// product.
///
/// ```
/// use submod_knn::Embeddings;
///
/// # fn main() -> Result<(), submod_knn::KnnError> {
/// let e = Embeddings::from_rows(3, &[&[1.0, 0.0, 0.0], &[0.0, 2.0, 0.0]])?;
/// assert_eq!(e.len(), 2);
/// assert_eq!(e.dim(), 3);
/// assert_eq!(e.row(1), &[0.0, 2.0, 0.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Embeddings {
    dim: usize,
    data: Vec<f32>,
    norms: Vec<f32>,
}

impl Embeddings {
    /// Creates embeddings from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim == 0`, the buffer length is not a multiple
    /// of `dim`, or any value is non-finite.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Result<Self, KnnError> {
        if dim == 0 {
            return Err(KnnError::EmptyParameter { name: "dim" });
        }
        if !data.len().is_multiple_of(dim) {
            return Err(KnnError::DimensionMismatch { expected: dim, got: data.len() % dim });
        }
        for (row, chunk) in data.chunks_exact(dim).enumerate() {
            if chunk.iter().any(|v| !v.is_finite()) {
                return Err(KnnError::NonFiniteValue { row });
            }
        }
        let norms = data.chunks_exact(dim).map(crate::distance::norm).collect();
        Ok(Embeddings { dim, data, norms })
    }

    /// Creates embeddings from row slices.
    ///
    /// # Errors
    ///
    /// Returns an error if rows disagree in length or contain non-finite
    /// values.
    pub fn from_rows(dim: usize, rows: &[&[f32]]) -> Result<Self, KnnError> {
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in rows {
            if row.len() != dim {
                return Err(KnnError::DimensionMismatch { expected: dim, got: row.len() });
            }
            data.extend_from_slice(row);
        }
        Self::from_flat(dim, data)
    }

    /// Number of vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Returns `true` if the matrix has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Vector dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Precomputed Euclidean norm of the `i`-th vector.
    #[inline]
    pub fn row_norm(&self, i: usize) -> f32 {
        self.norms[i]
    }

    /// All precomputed row norms (`len()` entries) — the hoisted-norm
    /// input the batch kernels take alongside [`Self::as_flat`].
    #[inline]
    pub fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// Iterates over `(index, vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f32])> + '_ {
        self.data.chunks_exact(self.dim).enumerate()
    }

    /// The flat row-major buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Cosine similarity between rows `i` and `j` (0 when either is a zero
    /// vector).
    pub fn cosine(&self, i: usize, j: usize) -> f32 {
        let denom = self.norms[i] * self.norms[j];
        if denom <= f32::MIN_POSITIVE {
            return 0.0;
        }
        crate::distance::dot(self.row(i), self.row(j)) / denom
    }

    /// Cosine similarity between row `i` and an external `query` vector.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != dim()`.
    pub fn cosine_to(&self, i: usize, query: &[f32]) -> f32 {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let qn = crate::distance::norm(query);
        let denom = self.norms[i] * qn;
        if denom <= f32::MIN_POSITIVE {
            return 0.0;
        }
        crate::distance::dot(self.row(i), query) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_accessors() {
        let e = Embeddings::from_rows(2, &[&[3.0, 4.0], &[1.0, 0.0]]).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e.dim(), 2);
        assert_eq!(e.row(0), &[3.0, 4.0]);
        assert!((e.row_norm(0) - 5.0).abs() < 1e-6);
        assert_eq!(e.iter().count(), 2);
        assert_eq!(e.as_flat(), &[3.0, 4.0, 1.0, 0.0]);
    }

    #[test]
    fn cosine_between_rows() {
        let e = Embeddings::from_rows(2, &[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 0.0]]).unwrap();
        assert!((e.cosine(0, 1)).abs() < 1e-6);
        assert!((e.cosine(0, 2) - 1.0).abs() < 1e-6);
        assert!((e.cosine_to(0, &[0.5, 0.5]) - (0.5f32 / (0.5f32.hypot(0.5)))).abs() < 1e-6);
    }

    #[test]
    fn zero_vectors_have_zero_cosine() {
        let e = Embeddings::from_rows(2, &[&[0.0, 0.0], &[1.0, 0.0]]).unwrap();
        assert_eq!(e.cosine(0, 1), 0.0);
    }

    #[test]
    fn validation_failures() {
        assert!(matches!(Embeddings::from_flat(0, vec![]), Err(KnnError::EmptyParameter { .. })));
        assert!(matches!(
            Embeddings::from_flat(3, vec![1.0, 2.0]),
            Err(KnnError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Embeddings::from_rows(2, &[&[1.0, 2.0], &[1.0]]),
            Err(KnnError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Embeddings::from_flat(1, vec![f32::NAN]),
            Err(KnnError::NonFiniteValue { row: 0 })
        ));
    }

    #[test]
    fn empty_embeddings() {
        let e = Embeddings::from_flat(4, vec![]).unwrap();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }
}
