use crate::{Embeddings, KnnError, NearestNeighbors, Neighbor};
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Random-hyperplane locality-sensitive hashing for cosine similarity.
///
/// Each of `tables` hash tables assigns a point the sign pattern of `bits`
/// random projections; near-duplicate vectors collide with high
/// probability. Queries union the buckets across tables (with single-bit
/// multiprobe when candidates run short) and rank candidates exactly.
///
/// LSH trades recall for index-build speed — useful for the perturbed
/// billion-scale simulation where near-duplicates dominate (§6.3).
///
/// ```
/// use submod_knn::{Embeddings, LshIndex, NearestNeighbors};
///
/// # fn main() -> Result<(), submod_knn::KnnError> {
/// let data = Embeddings::from_rows(2, &[&[1.0, 0.0], &[0.99, 0.01], &[-1.0, 0.0]])?;
/// let index = LshIndex::build(data, 4, 6, 7)?;
/// let hits = index.search_excluding(&[1.0, 0.0], 1, 0);
/// assert_eq!(hits[0].0, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct LshIndex {
    data: Arc<Embeddings>,
    /// `tables × bits` hyperplane normals, row-major.
    planes: Vec<f32>,
    tables: Vec<HashMap<u64, Vec<u32>>>,
    bits: usize,
}

impl LshIndex {
    /// Builds an LSH index with `tables` tables of `bits`-bit signatures.
    ///
    /// # Errors
    ///
    /// Returns an error if the embeddings are empty, `tables == 0`,
    /// `bits == 0`, or `bits > 63`.
    pub fn build(
        data: Embeddings,
        tables: usize,
        bits: usize,
        seed: u64,
    ) -> Result<Self, KnnError> {
        if data.is_empty() {
            return Err(KnnError::EmptyParameter { name: "embeddings" });
        }
        if tables == 0 {
            return Err(KnnError::EmptyParameter { name: "tables" });
        }
        if bits == 0 || bits > 63 {
            return Err(KnnError::EmptyParameter { name: "bits (1..=63)" });
        }
        let dim = data.dim();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let planes: Vec<f32> =
            (0..tables * bits * dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let mut built = LshIndex { data: Arc::new(data), planes, tables: Vec::new(), bits };
        let mut table_maps = vec![HashMap::new(); tables];
        for i in 0..built.data.len() {
            let row = built.data.row(i);
            for (t, map) in table_maps.iter_mut().enumerate() {
                let sig = built.signature(t, row);
                map.entry(sig).or_insert_with(Vec::new).push(i as u32);
            }
        }
        built.tables = table_maps;
        Ok(built)
    }

    /// The indexed embeddings.
    pub fn embeddings(&self) -> &Embeddings {
        &self.data
    }

    /// Number of hash tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Signature of `row` under table `t`'s hyperplanes.
    fn signature(&self, t: usize, row: &[f32]) -> u64 {
        let dim = self.data.dim();
        let mut sig = 0u64;
        for b in 0..self.bits {
            let plane_base = (t * self.bits + b) * dim;
            let plane = &self.planes[plane_base..plane_base + dim];
            if crate::distance::dot(plane, row) >= 0.0 {
                sig |= 1 << b;
            }
        }
        sig
    }

    /// Gathers candidates from every table's bucket (plus 1-bit multiprobe
    /// neighbors when `widen` is set).
    fn candidates(&self, query: &[f32], widen: bool) -> Vec<u32> {
        let mut seen = Vec::new();
        for (t, map) in self.tables.iter().enumerate() {
            let sig = self.signature(t, query);
            if let Some(bucket) = map.get(&sig) {
                seen.extend_from_slice(bucket);
            }
            if widen {
                for b in 0..self.bits {
                    if let Some(bucket) = map.get(&(sig ^ (1 << b))) {
                        seen.extend_from_slice(bucket);
                    }
                }
            }
        }
        seen.sort_unstable();
        seen.dedup();
        seen
    }
}

impl NearestNeighbors for LshIndex {
    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_excluding(query, k, u32::MAX)
    }

    fn search_excluding(&self, query: &[f32], k: usize, exclude: u32) -> Vec<Neighbor> {
        let mut candidates = self.candidates(query, false);
        if candidates.len() < k.saturating_mul(2) {
            candidates = self.candidates(query, true);
        }
        let hits = crate::brute::rank_candidates(&self.data, query, &candidates, k, exclude);
        if hits.len() >= k.min(self.data.len().saturating_sub(1)) {
            return hits;
        }
        // Last resort: exact scan (rare; tiny buckets on adversarial data).
        crate::brute::top_k_by_cosine(&self.data, query, k, exclude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactKnn;
    use rand::{Rng, SeedableRng};

    fn noisy_duplicates(base: usize, copies: usize, dim: usize, seed: u64) -> Embeddings {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bases: Vec<Vec<f32>> =
            (0..base).map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect()).collect();
        let mut flat = Vec::new();
        for b in &bases {
            for _ in 0..copies {
                for &x in b {
                    flat.push(x + rng.gen_range(-0.01f32..0.01));
                }
            }
        }
        Embeddings::from_flat(dim, flat).unwrap()
    }

    #[test]
    fn finds_near_duplicates() {
        let data = noisy_duplicates(20, 10, 16, 5);
        let index = LshIndex::build(data.clone(), 6, 10, 5).unwrap();
        // Query with point 0; its 9 siblings (1..10) are the true neighbors.
        let hits = index.search_excluding(data.row(0), 9, 0);
        let in_family = hits.iter().filter(|&&(id, _)| id < 10).count();
        assert!(in_family >= 7, "only {in_family}/9 family members found");
    }

    #[test]
    fn recall_against_exact() {
        let data = noisy_duplicates(10, 20, 8, 11);
        let exact = ExactKnn::build(data.clone()).unwrap();
        let lsh = LshIndex::build(data.clone(), 8, 8, 11).unwrap();
        let mut hits = 0usize;
        let mut total = 0usize;
        for q in (0..data.len()).step_by(13) {
            let truth: Vec<u32> = exact
                .search_excluding(data.row(q), 5, q as u32)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            let approx: Vec<u32> = lsh
                .search_excluding(data.row(q), 5, q as u32)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            total += truth.len();
            hits += truth.iter().filter(|t| approx.contains(t)).count();
        }
        assert!(hits as f64 / total as f64 > 0.8);
    }

    #[test]
    fn falls_back_to_exact_when_buckets_are_thin() {
        let data = noisy_duplicates(4, 1, 4, 3);
        let index = LshIndex::build(data.clone(), 1, 12, 3).unwrap();
        // 12-bit signatures over 4 points: buckets are almost surely
        // singletons, so the fallback path must still return k results.
        let hits = index.search_excluding(data.row(0), 3, 0);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn parameter_validation() {
        let data = noisy_duplicates(2, 2, 4, 1);
        assert!(LshIndex::build(data.clone(), 0, 8, 0).is_err());
        assert!(LshIndex::build(data.clone(), 2, 0, 0).is_err());
        assert!(LshIndex::build(data.clone(), 2, 64, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let data = noisy_duplicates(5, 5, 8, 2);
        let a = LshIndex::build(data.clone(), 4, 8, 77).unwrap();
        let b = LshIndex::build(data.clone(), 4, 8, 77).unwrap();
        assert_eq!(a.search(data.row(3), 4), b.search(data.row(3), 4));
    }
}
