use crate::{Embeddings, KnnError, NearestNeighbors, Neighbor};
use std::sync::Arc;

/// Exact brute-force nearest-neighbor search by cosine similarity.
///
/// O(n·d) per query; the reference backend for recall measurements and the
/// default for small datasets (CIFAR-100-scale) where exactness is cheap.
/// Single queries and [`NearestNeighbors::search_batch`] blocks both run
/// on the `submod_kernels` batch scan, so batched results are
/// bitwise-identical to one-at-a-time searches — the batch merely streams
/// the row matrix once per query block.
///
/// ```
/// use submod_knn::{Embeddings, ExactKnn, NearestNeighbors};
///
/// # fn main() -> Result<(), submod_knn::KnnError> {
/// let data = Embeddings::from_rows(2, &[&[1.0, 0.0], &[0.9, 0.1], &[0.0, 1.0]])?;
/// let index = ExactKnn::build(data)?;
/// let hits = index.search(&[1.0, 0.05], 2);
/// assert_eq!(hits[0].0, 0);
/// assert_eq!(hits[1].0, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ExactKnn {
    data: Arc<Embeddings>,
}

impl ExactKnn {
    /// Builds the (trivial) index by taking ownership of the embeddings.
    ///
    /// # Errors
    ///
    /// Returns an error if the embeddings are empty.
    pub fn build(data: Embeddings) -> Result<Self, KnnError> {
        if data.is_empty() {
            return Err(KnnError::EmptyParameter { name: "embeddings" });
        }
        Ok(ExactKnn { data: Arc::new(data) })
    }

    /// The indexed embeddings.
    pub fn embeddings(&self) -> &Embeddings {
        &self.data
    }

    /// Flattens borrowed query rows into one row-major buffer for the
    /// batch kernel, validating dimensions.
    fn flatten_queries(&self, queries: &[&[f32]]) -> Vec<f32> {
        let dim = self.data.dim();
        let mut flat = Vec::with_capacity(queries.len() * dim);
        for q in queries {
            assert_eq!(q.len(), dim, "query dimension mismatch");
            flat.extend_from_slice(q);
        }
        flat
    }
}

impl NearestNeighbors for ExactKnn {
    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        top_k_by_cosine(&self.data, query, k, u32::MAX)
    }

    fn search_excluding(&self, query: &[f32], k: usize, exclude: u32) -> Vec<Neighbor> {
        top_k_by_cosine(&self.data, query, k, exclude)
    }

    fn search_batch(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<Neighbor>> {
        submod_kernels::batch_top_k(
            &self.flatten_queries(queries),
            self.data.as_flat(),
            self.data.norms(),
            self.data.dim(),
            k,
            &[],
        )
    }

    fn search_batch_excluding(
        &self,
        queries: &[&[f32]],
        k: usize,
        excludes: &[u32],
    ) -> Vec<Vec<Neighbor>> {
        assert_eq!(queries.len(), excludes.len(), "one exclude per query");
        submod_kernels::batch_top_k(
            &self.flatten_queries(queries),
            self.data.as_flat(),
            self.data.norms(),
            self.data.dim(),
            k,
            excludes,
        )
    }
}

/// Scans every row, keeping the `k` most similar (excluding `exclude`).
/// Deterministic: ties break toward the smaller index. This is the batch
/// kernel invoked with a single query, so one-at-a-time and batched
/// searches cannot drift apart.
pub(crate) fn top_k_by_cosine(
    data: &Embeddings,
    query: &[f32],
    k: usize,
    exclude: u32,
) -> Vec<Neighbor> {
    assert_eq!(query.len(), data.dim(), "query dimension mismatch");
    submod_kernels::batch_top_k(query, data.as_flat(), data.norms(), data.dim(), k, &[exclude])
        .pop()
        .unwrap_or_default()
}

/// Ranks an explicit candidate list by cosine similarity to `query`,
/// keeping the top `k`. Shared by the IVF and LSH backends; the scan is
/// blocked four candidates per micro-kernel pass with the query norm
/// hoisted out of the loop.
pub(crate) fn rank_candidates(
    data: &Embeddings,
    query: &[f32],
    candidates: &[u32],
    k: usize,
    exclude: u32,
) -> Vec<Neighbor> {
    submod_kernels::cosine_top_k_gather(
        data.as_flat(),
        data.norms(),
        data.dim(),
        candidates,
        query,
        k,
        exclude,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data(n: usize) -> Embeddings {
        // Points on the unit circle at increasing angles: neighbors in
        // index order.
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let theta = i as f32 * 0.1;
                vec![theta.cos(), theta.sin()]
            })
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
        Embeddings::from_rows(2, &refs).unwrap()
    }

    #[test]
    fn search_finds_angular_neighbors() {
        let data = line_data(20);
        let index = ExactKnn::build(data).unwrap();
        let hits = index.search_excluding(index.embeddings().row(10).to_vec().as_slice(), 2, 10);
        let ids: Vec<u32> = hits.iter().map(|&(id, _)| id).collect();
        assert!(ids.contains(&9) && ids.contains(&11), "got {ids:?}");
    }

    #[test]
    fn results_are_sorted_descending() {
        let data = line_data(30);
        let index = ExactKnn::build(data).unwrap();
        let hits = index.search(&[1.0, 0.0], 10);
        for pair in hits.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn k_larger_than_dataset_returns_everything() {
        let data = line_data(5);
        let index = ExactKnn::build(data).unwrap();
        assert_eq!(index.search(&[1.0, 0.0], 50).len(), 5);
        assert_eq!(index.search_excluding(&[1.0, 0.0], 50, 0).len(), 4);
    }

    #[test]
    fn k_zero_returns_empty() {
        let data = line_data(5);
        let index = ExactKnn::build(data).unwrap();
        assert!(index.search(&[1.0, 0.0], 0).is_empty());
    }

    #[test]
    fn empty_embeddings_rejected() {
        let data = Embeddings::from_flat(3, vec![]).unwrap();
        assert!(ExactKnn::build(data).is_err());
    }

    #[test]
    fn ties_break_toward_smaller_index() {
        // Identical points: smaller indices must win the top-k slots.
        let data = Embeddings::from_rows(2, &[&[1.0, 0.0], &[1.0, 0.0], &[1.0, 0.0], &[1.0, 0.0]])
            .unwrap();
        let index = ExactKnn::build(data).unwrap();
        let hits = index.search(&[1.0, 0.0], 2);
        let ids: Vec<u32> = hits.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn rank_candidates_filters_and_ranks() {
        let data = line_data(10);
        let hits = rank_candidates(&data, data.row(0).to_vec().as_slice(), &[2u32, 5, 8], 2, 5);
        let ids: Vec<u32> = hits.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![2, 8]);
    }

    #[test]
    fn batch_search_is_bitwise_identical_to_single() {
        let data = line_data(33);
        let index = ExactKnn::build(data.clone()).unwrap();
        let queries: Vec<&[f32]> = (0..data.len()).map(|i| data.row(i)).collect();
        let excludes: Vec<u32> = (0..data.len() as u32).collect();
        let batched = index.search_batch_excluding(&queries, 5, &excludes);
        let plain = index.search_batch(&queries, 5);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batched[i], index.search_excluding(q, 5, i as u32), "query {i}");
            assert_eq!(plain[i], index.search(q, 5), "query {i}");
        }
    }
}
