use crate::{Embeddings, KnnError, NearestNeighbors, Neighbor};
use std::cmp::Ordering;
use std::sync::Arc;

/// Exact brute-force nearest-neighbor search by cosine similarity.
///
/// O(n·d) per query; the reference backend for recall measurements and the
/// default for small datasets (CIFAR-100-scale) where exactness is cheap.
///
/// ```
/// use submod_knn::{Embeddings, ExactKnn, NearestNeighbors};
///
/// # fn main() -> Result<(), submod_knn::KnnError> {
/// let data = Embeddings::from_rows(2, &[&[1.0, 0.0], &[0.9, 0.1], &[0.0, 1.0]])?;
/// let index = ExactKnn::build(data)?;
/// let hits = index.search(&[1.0, 0.05], 2);
/// assert_eq!(hits[0].0, 0);
/// assert_eq!(hits[1].0, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ExactKnn {
    data: Arc<Embeddings>,
}

impl ExactKnn {
    /// Builds the (trivial) index by taking ownership of the embeddings.
    ///
    /// # Errors
    ///
    /// Returns an error if the embeddings are empty.
    pub fn build(data: Embeddings) -> Result<Self, KnnError> {
        if data.is_empty() {
            return Err(KnnError::EmptyParameter { name: "embeddings" });
        }
        Ok(ExactKnn { data: Arc::new(data) })
    }

    /// The indexed embeddings.
    pub fn embeddings(&self) -> &Embeddings {
        &self.data
    }
}

impl NearestNeighbors for ExactKnn {
    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        top_k_by_cosine(&self.data, query, k, u32::MAX)
    }

    fn search_excluding(&self, query: &[f32], k: usize, exclude: u32) -> Vec<Neighbor> {
        top_k_by_cosine(&self.data, query, k, exclude)
    }
}

/// Scans every row, keeping the `k` most similar (excluding `exclude`).
/// Deterministic: ties break toward the smaller index.
pub(crate) fn top_k_by_cosine(
    data: &Embeddings,
    query: &[f32],
    k: usize,
    exclude: u32,
) -> Vec<Neighbor> {
    if k == 0 {
        return Vec::new();
    }
    let qn = crate::distance::norm(query);
    let mut heap = TopK::new(k);
    for (i, row) in data.iter() {
        if i as u32 == exclude {
            continue;
        }
        let denom = data.row_norm(i) * qn;
        let sim =
            if denom <= f32::MIN_POSITIVE { 0.0 } else { crate::distance::dot(row, query) / denom };
        heap.offer(i as u32, sim);
    }
    heap.into_sorted()
}

/// Ranks an explicit candidate list by cosine similarity to `query`,
/// keeping the top `k`. Shared by the IVF and LSH backends.
pub(crate) fn rank_candidates(
    data: &Embeddings,
    query: &[f32],
    candidates: impl IntoIterator<Item = u32>,
    k: usize,
    exclude: u32,
) -> Vec<Neighbor> {
    if k == 0 {
        return Vec::new();
    }
    let qn = crate::distance::norm(query);
    let mut heap = TopK::new(k);
    for c in candidates {
        if c == exclude {
            continue;
        }
        let i = c as usize;
        let denom = data.row_norm(i) * qn;
        let sim = if denom <= f32::MIN_POSITIVE {
            0.0
        } else {
            crate::distance::dot(data.row(i), query) / denom
        };
        heap.offer(c, sim);
    }
    heap.into_sorted()
}

/// A fixed-capacity top-k tracker (min-heap by similarity, tie-break by
/// larger index so smaller indices win overall).
struct TopK {
    k: usize,
    // (similarity, id): the *worst* kept entry sits at heap[0].
    heap: Vec<(f32, u32)>,
}

impl TopK {
    fn new(k: usize) -> Self {
        TopK { k, heap: Vec::with_capacity(k + 1) }
    }

    /// `true` if `a` is worse than `b` (lower sim, or equal sim with larger id).
    fn worse(a: (f32, u32), b: (f32, u32)) -> bool {
        match a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => a.1 > b.1,
        }
    }

    fn offer(&mut self, id: u32, sim: f32) {
        if self.heap.len() < self.k {
            self.heap.push((sim, id));
            let mut i = self.heap.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if Self::worse(self.heap[i], self.heap[parent]) {
                    self.heap.swap(i, parent);
                    i = parent;
                } else {
                    break;
                }
            }
        } else if Self::worse(self.heap[0], (sim, id)) {
            self.heap[0] = (sim, id);
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut worst = i;
                if l < self.heap.len() && Self::worse(self.heap[l], self.heap[worst]) {
                    worst = l;
                }
                if r < self.heap.len() && Self::worse(self.heap[r], self.heap[worst]) {
                    worst = r;
                }
                if worst == i {
                    break;
                }
                self.heap.swap(i, worst);
                i = worst;
            }
        }
    }

    fn into_sorted(self) -> Vec<Neighbor> {
        let mut entries = self.heap;
        entries.sort_by(|a, b| {
            b.0.partial_cmp(&a.0).unwrap_or(Ordering::Equal).then_with(|| a.1.cmp(&b.1))
        });
        entries.into_iter().map(|(sim, id)| (id, sim)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data(n: usize) -> Embeddings {
        // Points on the unit circle at increasing angles: neighbors in
        // index order.
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let theta = i as f32 * 0.1;
                vec![theta.cos(), theta.sin()]
            })
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
        Embeddings::from_rows(2, &refs).unwrap()
    }

    #[test]
    fn search_finds_angular_neighbors() {
        let data = line_data(20);
        let index = ExactKnn::build(data).unwrap();
        let hits = index.search_excluding(index.embeddings().row(10).to_vec().as_slice(), 2, 10);
        let ids: Vec<u32> = hits.iter().map(|&(id, _)| id).collect();
        assert!(ids.contains(&9) && ids.contains(&11), "got {ids:?}");
    }

    #[test]
    fn results_are_sorted_descending() {
        let data = line_data(30);
        let index = ExactKnn::build(data).unwrap();
        let hits = index.search(&[1.0, 0.0], 10);
        for pair in hits.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn k_larger_than_dataset_returns_everything() {
        let data = line_data(5);
        let index = ExactKnn::build(data).unwrap();
        assert_eq!(index.search(&[1.0, 0.0], 50).len(), 5);
        assert_eq!(index.search_excluding(&[1.0, 0.0], 50, 0).len(), 4);
    }

    #[test]
    fn k_zero_returns_empty() {
        let data = line_data(5);
        let index = ExactKnn::build(data).unwrap();
        assert!(index.search(&[1.0, 0.0], 0).is_empty());
    }

    #[test]
    fn empty_embeddings_rejected() {
        let data = Embeddings::from_flat(3, vec![]).unwrap();
        assert!(ExactKnn::build(data).is_err());
    }

    #[test]
    fn ties_break_toward_smaller_index() {
        // Identical points: smaller indices must win the top-k slots.
        let data = Embeddings::from_rows(2, &[&[1.0, 0.0], &[1.0, 0.0], &[1.0, 0.0], &[1.0, 0.0]])
            .unwrap();
        let index = ExactKnn::build(data).unwrap();
        let hits = index.search(&[1.0, 0.0], 2);
        let ids: Vec<u32> = hits.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn rank_candidates_filters_and_ranks() {
        let data = line_data(10);
        let hits = rank_candidates(&data, data.row(0).to_vec().as_slice(), [2u32, 5, 8], 2, 5);
        let ids: Vec<u32> = hits.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![2, 8]);
    }
}
