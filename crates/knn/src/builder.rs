use crate::{Embeddings, ExactKnn, IvfIndex, KnnError, LshIndex, NearestNeighbors};
use submod_core::{GraphBuilder, SimilarityGraph};

/// Queries per graph-build work item. Each block is one task on the
/// `submod_exec` pool and one `search_batch_excluding` call, so the
/// backend's batch kernel streams the row matrix once per block; 64
/// queries keeps tens of stealable tasks even at the 2 k-point exact
/// crossover while amortizing the per-task overhead.
const QUERY_BLOCK: usize = 64;

/// Which search backend builds the k-NN graph.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum KnnBackend {
    /// Exact brute force — O(n²·d) build, the reference.
    Exact,
    /// Inverted-file index (k-means coarse quantizer + probing).
    Ivf {
        /// Number of k-means cells (0 = `√n` default).
        nlist: usize,
        /// Cells probed per query.
        nprobe: usize,
    },
    /// Random-hyperplane LSH.
    Lsh {
        /// Number of hash tables.
        tables: usize,
        /// Signature bits per table.
        bits: usize,
    },
}

/// The largest dataset `KnnBackend::auto` still builds with the exact
/// backend. Profiled, not guessed: `cargo run --release -p submod-bench
/// --bin knn-crossover` measures exact vs IVF (at `auto`'s own
/// parameters, `nlist = √n`, `nprobe = 8`) build times over a geometric
/// size ladder. On the reference runner IVF breaks even near 1 000
/// points and is ≥ 1.7× faster from 2 000 up (2.5× at 8 000, 3× at
/// 16 000, growing with the O(n²·d) brute-force gap), so the crossover
/// sits at the last size where exact's reference-grade graph costs at
/// most a few dozen milliseconds extra.
pub const AUTO_EXACT_MAX_POINTS: usize = 2_000;

impl KnnBackend {
    /// The default backend for a dataset of size `n`: exact up to
    /// [`AUTO_EXACT_MAX_POINTS`] (reference-grade graph, affordable
    /// build), IVF above (profiled ≥ 1.7× faster there, with the gap
    /// widening quadratically).
    pub fn auto(n: usize) -> Self {
        if n <= AUTO_EXACT_MAX_POINTS {
            KnnBackend::Exact
        } else {
            KnnBackend::Ivf { nlist: IvfIndex::default_nlist(n), nprobe: 8 }
        }
    }
}

/// Builds the symmetrized k-nearest-neighbor similarity graph of the paper
/// (§6): directed top-`k` cosine neighbors per point, symmetrized so every
/// point has *at least* `k` neighbors, with edge weights `max(cos, 0)`.
///
/// Cosine similarities are clamped to non-negative values because the
/// pairwise objective requires `s(v, w) ≥ 0` for submodularity (§3);
/// non-positive-similarity edges are dropped entirely.
///
/// # Errors
///
/// Returns an error if `k == 0`, the embeddings are empty, or the backend
/// parameters are invalid.
///
/// ```
/// use submod_knn::{build_knn_graph, Embeddings, KnnBackend};
///
/// # fn main() -> Result<(), submod_knn::KnnError> {
/// let data = Embeddings::from_rows(2, &[&[1.0, 0.0], &[0.9, 0.1], &[0.0, 1.0]])?;
/// let graph = build_knn_graph(&data, 1, &KnnBackend::Exact, 0)?;
/// assert!(graph.is_symmetric());
/// assert!(graph.min_degree() >= 1);
/// # Ok(())
/// # }
/// ```
pub fn build_knn_graph(
    embeddings: &Embeddings,
    k: usize,
    backend: &KnnBackend,
    seed: u64,
) -> Result<SimilarityGraph, KnnError> {
    if k == 0 {
        return Err(KnnError::EmptyParameter { name: "k" });
    }
    let n = embeddings.len();
    if n == 0 {
        return Err(KnnError::EmptyParameter { name: "embeddings" });
    }
    let _span = submod_obs::span("knn.build");
    submod_obs::counter!("knn.build.points").add(n as u64);

    let neighbor_lists: Vec<Vec<(u32, f32)>> = match backend {
        KnnBackend::Exact => {
            let index = ExactKnn::build(embeddings.clone())?;
            search_all(&index, embeddings, k)
        }
        KnnBackend::Ivf { nlist, nprobe } => {
            let nlist = if *nlist == 0 { IvfIndex::default_nlist(n) } else { *nlist };
            let index = IvfIndex::build(embeddings.clone(), nlist.min(n), *nprobe, seed)?;
            search_all(&index, embeddings, k)
        }
        KnnBackend::Lsh { tables, bits } => {
            let index = LshIndex::build(embeddings.clone(), *tables, *bits, seed)?;
            search_all(&index, embeddings, k)
        }
    };

    let mut builder = GraphBuilder::new(n);
    for (v, neighbors) in neighbor_lists.into_iter().enumerate() {
        for (w, sim) in neighbors {
            if sim > 0.0 {
                builder.add_directed(v as u64, u64::from(w), sim.min(1.0))?;
            }
        }
    }
    Ok(builder.build().symmetrized())
}

/// Emit-to-disk graph build: constructs the same symmetrized k-NN graph as
/// [`build_knn_graph`], writes it to `path` as an on-disk CSR store in one
/// shot, and returns it reopened **memory-mapped**.
///
/// This is the builder the larger-than-memory pipeline uses: the owned
/// arrays exist only transiently inside the build, after which the graph
/// lives in the page cache and every shard of a distributed selection
/// shares the single read-only mapping. The store file persists at `path`
/// for later runs ([`SimilarityGraph::open_store`] amortizes the build to
/// zero).
///
/// # Errors
///
/// Same conditions as [`build_knn_graph`], plus any store write/open
/// failure as [`KnnError::Store`].
pub fn build_knn_graph_store(
    embeddings: &Embeddings,
    k: usize,
    backend: &KnnBackend,
    seed: u64,
    path: &std::path::Path,
) -> Result<SimilarityGraph, KnnError> {
    let graph = build_knn_graph(embeddings, k, backend, seed)?;
    graph.write_store(path)?;
    Ok(SimilarityGraph::open_store(path)?)
}

/// Searches every point's neighbors by issuing [`QUERY_BLOCK`]-sized
/// query blocks across the `submod_exec` pool: parallel over blocks,
/// results merged in block order (`parallel_map` preserves submission
/// order), so the output is identical at any thread count.
fn search_all<I: NearestNeighbors + Sync>(
    index: &I,
    embeddings: &Embeddings,
    k: usize,
) -> Vec<Vec<(u32, f32)>> {
    let n = embeddings.len();
    let blocks: Vec<std::ops::Range<usize>> =
        (0..n).step_by(QUERY_BLOCK).map(|s| s..(s + QUERY_BLOCK).min(n)).collect();
    submod_exec::parallel_map(blocks, |block| {
        let _span = submod_obs::span_full("knn.search_block");
        submod_obs::counter!("knn.search.blocks").incr();
        submod_obs::counter!("knn.search.queries").add(block.len() as u64);
        let queries: Vec<&[f32]> = block.clone().map(|v| embeddings.row(v)).collect();
        let excludes: Vec<u32> = block.map(|v| v as u32).collect();
        index.search_batch_excluding(&queries, k, &excludes)
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use submod_core::NodeId;

    fn gaussian_mixture(n: usize, dim: usize, clusters: usize, seed: u64) -> Embeddings {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.gen_range(-3.0..3.0f32)).collect())
            .collect();
        let mut flat = Vec::new();
        for i in 0..n {
            let c = &centers[i % clusters];
            for &x in c {
                flat.push(x + rng.gen_range(-0.3f32..0.3));
            }
        }
        Embeddings::from_flat(dim, flat).unwrap()
    }

    #[test]
    fn exact_graph_has_min_degree_k() {
        let data = gaussian_mixture(200, 8, 5, 1);
        let graph = build_knn_graph(&data, 10, &KnnBackend::Exact, 0).unwrap();
        assert_eq!(graph.num_nodes(), 200);
        assert!(graph.is_symmetric());
        // Symmetrization can only add edges: every node keeps ≥ k
        // (a handful may dip below k if some similarities were ≤ 0).
        assert!(graph.min_degree() >= 9, "min degree {}", graph.min_degree());
        // The paper reports ~15/16 average neighbors after symmetrizing 10-NN.
        let avg = graph.avg_degree();
        assert!((10.0..=20.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn weights_are_valid_cosines() {
        let data = gaussian_mixture(100, 4, 3, 2);
        let graph = build_knn_graph(&data, 5, &KnnBackend::Exact, 0).unwrap();
        let (_, _, weights) = graph.csr_parts();
        for &w in weights {
            assert!(w > 0.0 && w <= 1.0, "weight {w} out of (0, 1]");
        }
    }

    #[test]
    fn ivf_graph_close_to_exact() {
        let data = gaussian_mixture(400, 8, 8, 3);
        let exact = build_knn_graph(&data, 5, &KnnBackend::Exact, 0).unwrap();
        let ivf = build_knn_graph(&data, 5, &KnnBackend::Ivf { nlist: 8, nprobe: 3 }, 3).unwrap();
        // Count directed-edge overlap.
        let mut shared = 0usize;
        let mut total = 0usize;
        for v in 0..400u64 {
            let ev: Vec<_> = exact.neighbors(NodeId::new(v)).to_vec();
            for w in ivf.neighbors(NodeId::new(v)) {
                total += 1;
                shared += usize::from(ev.contains(w));
            }
        }
        let overlap = shared as f64 / total as f64;
        assert!(overlap > 0.85, "IVF edge overlap {overlap} too low");
    }

    #[test]
    fn lsh_graph_builds_and_is_symmetric() {
        let data = gaussian_mixture(300, 8, 6, 4);
        let graph = build_knn_graph(&data, 5, &KnnBackend::Lsh { tables: 6, bits: 8 }, 4).unwrap();
        assert!(graph.is_symmetric());
        assert!(graph.min_degree() >= 4);
    }

    /// Pins the profiled Exact→IVF decision boundary: exactly at
    /// [`AUTO_EXACT_MAX_POINTS`] the build stays exact, one point above
    /// it switches to IVF with `auto`'s profiled parameters.
    #[test]
    fn auto_backend_picks_by_size() {
        assert_eq!(KnnBackend::auto(100), KnnBackend::Exact);
        assert_eq!(KnnBackend::auto(AUTO_EXACT_MAX_POINTS), KnnBackend::Exact);
        let above = KnnBackend::auto(AUTO_EXACT_MAX_POINTS + 1);
        assert_eq!(
            above,
            KnnBackend::Ivf {
                nlist: IvfIndex::default_nlist(AUTO_EXACT_MAX_POINTS + 1),
                nprobe: 8
            }
        );
        assert!(matches!(KnnBackend::auto(100_000), KnnBackend::Ivf { .. }));
    }

    #[test]
    fn emit_to_disk_build_matches_in_memory() {
        let data = gaussian_mixture(150, 6, 4, 7);
        let in_memory = build_knn_graph(&data, 5, &KnnBackend::Exact, 0).unwrap();
        let path =
            std::env::temp_dir().join(format!("submod-builder-test-{}.csr", std::process::id()));
        let stored = build_knn_graph_store(&data, 5, &KnnBackend::Exact, 0, &path).unwrap();
        assert!(stored.is_mapped(), "emit-to-disk must return the mapped graph");
        assert_eq!(stored, in_memory, "mapped graph must be bit-identical to the in-memory build");
        assert_eq!(stored.csr_parts(), in_memory.csr_parts());
        // The persisted store reopens identically (the amortize-to-zero path).
        let reopened = SimilarityGraph::open_store(&path).unwrap();
        assert_eq!(reopened, in_memory);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_bad_arguments() {
        let data = gaussian_mixture(10, 4, 2, 5);
        assert!(build_knn_graph(&data, 0, &KnnBackend::Exact, 0).is_err());
        let empty = Embeddings::from_flat(4, vec![]).unwrap();
        assert!(build_knn_graph(&empty, 3, &KnnBackend::Exact, 0).is_err());
    }
}
