//! k-NN graph construction backends: exact vs IVF vs LSH build cost (the
//! §6 graph-construction stage).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use submod_knn::{build_knn_graph, Embeddings, KnnBackend};

fn embeddings(n: usize, dim: usize, seed: u64) -> Embeddings {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let flat: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Embeddings::from_flat(dim, flat).unwrap()
}

fn bench_backends(c: &mut Criterion) {
    let data = embeddings(3_000, 32, 1);
    let mut group = c.benchmark_group("knn_build_3k_32d");
    group.sample_size(10);
    group.bench_function("exact", |b| {
        b.iter(|| build_knn_graph(&data, 10, &KnnBackend::Exact, 0).unwrap())
    });
    group.bench_function("ivf_55x4", |b| {
        b.iter(|| build_knn_graph(&data, 10, &KnnBackend::Ivf { nlist: 55, nprobe: 4 }, 0).unwrap())
    });
    group.bench_function("lsh_8x10", |b| {
        b.iter(|| build_knn_graph(&data, 10, &KnnBackend::Lsh { tables: 8, bits: 10 }, 0).unwrap())
    });
    group.finish();
}

fn bench_exact_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_exact_scaling");
    group.sample_size(10);
    for n in [1_000usize, 4_000] {
        let data = embeddings(n, 32, 2);
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| build_knn_graph(&data, 10, &KnnBackend::Exact, 0).unwrap())
        });
    }
    group.finish();
}

/// The PR 4 headline: the 10-NN graph over 10 k CIFAR-width (64-d)
/// embeddings, exact backend — the scan the blocked SIMD kernels were
/// built for. The acceptance gate compares this against the pre-kernel
/// baseline measured on the same runner (≥ 2× single-thread).
fn bench_build_10k_64d(c: &mut Criterion) {
    let data = embeddings(10_000, 64, 7);
    let mut group = c.benchmark_group("knn_build_10k_64d");
    group.sample_size(10);
    group.bench_function("exact", |b| {
        b.iter(|| build_knn_graph(&data, 10, &KnnBackend::Exact, 0).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_backends, bench_exact_scaling, bench_build_10k_64d);
criterion_main!(benches);
