//! Distributed greedy cost as partitions and rounds scale (the runtime
//! behind Figures 3/4), plus the GreeDi baseline for comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use submod_core::{GraphBuilder, NodeId, PairwiseObjective, SimilarityGraph};
use submod_dataflow::Pipeline;
use submod_dist::{
    distributed_greedy, distributed_greedy_dataflow, greedi, DistGreedyConfig, PartitionStyle,
};

fn instance(n: usize, seed: u64) -> (SimilarityGraph, PairwiseObjective) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u64 {
        for _ in 0..5 {
            let w = rng.gen_range(0..n as u64);
            if w != v {
                b.add_undirected(v, w, rng.gen_range(0.01..1.0)).unwrap();
            }
        }
    }
    let graph = b.build();
    let utilities: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    (graph, PairwiseObjective::from_alpha(0.9, utilities).unwrap())
}

fn bench_partitions_and_rounds(c: &mut Criterion) {
    let (graph, objective) = instance(20_000, 1);
    let ground: Vec<NodeId> = (0..20_000).map(NodeId::from_index).collect();
    let k = 2_000;
    let mut group = c.benchmark_group("distributed_greedy_20k");
    group.sample_size(10);
    for (partitions, rounds) in [(4usize, 1usize), (16, 1), (4, 8), (16, 8)] {
        for adaptive in [false, true] {
            let name =
                format!("p{partitions}_r{rounds}{}", if adaptive { "_adaptive" } else { "" });
            group.bench_function(name, |b| {
                let config =
                    DistGreedyConfig::new(partitions, rounds).unwrap().adaptive(adaptive).seed(7);
                b.iter(|| distributed_greedy(&graph, &objective, &ground, k, &config).unwrap())
            });
        }
    }
    group.finish();
}

/// Same-runner executor comparison at 2k points: the in-memory driver vs
/// the dataflow driver in lockstep and with multi-winner batched passes.
/// `bench-diff --dataflow-ratio` gates the dataflow/in_memory ratios of
/// this group (and of `bounding_executor_2k`) against the checked-in
/// baseline.
fn bench_greedy_executor(c: &mut Criterion) {
    let (graph, objective) = instance(2_000, 3);
    let ground: Vec<NodeId> = (0..2_000).map(NodeId::from_index).collect();
    let k = 200;
    let config = DistGreedyConfig::new(4, 3).unwrap().seed(7);
    let mut group = c.benchmark_group("greedy_executor_2k");
    group.sample_size(10);
    group.bench_function("in_memory", |b| {
        b.iter(|| distributed_greedy(&graph, &objective, &ground, k, &config).unwrap())
    });
    group.bench_function("dataflow", |b| {
        let pipeline = Pipeline::new(4).unwrap();
        b.iter(|| {
            distributed_greedy_dataflow(&pipeline, &graph, &objective, &ground, k, &config).unwrap()
        })
    });
    group.bench_function("dataflow_batched", |b| {
        let pipeline = Pipeline::new(4).unwrap();
        let batched = config.clone().winner_batch(64);
        b.iter(|| {
            distributed_greedy_dataflow(&pipeline, &graph, &objective, &ground, k, &batched)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_greedi_baseline(c: &mut Criterion) {
    let (graph, objective) = instance(20_000, 2);
    let k = 2_000;
    let mut group = c.benchmark_group("greedi_20k");
    group.sample_size(10);
    for machines in [4usize, 16] {
        group.bench_function(format!("m{machines}"), |b| {
            b.iter(|| greedi(&graph, &objective, k, machines, PartitionStyle::Random, 3).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_partitions_and_rounds,
    bench_greedy_executor,
    bench_greedi_baseline
);
criterion_main!(benches);
