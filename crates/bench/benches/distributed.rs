//! Distributed greedy cost as partitions and rounds scale (the runtime
//! behind Figures 3/4), plus the GreeDi baseline for comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use submod_core::{GraphBuilder, NodeId, PairwiseObjective, SimilarityGraph};
use submod_dist::{distributed_greedy, greedi, DistGreedyConfig, PartitionStyle};

fn instance(n: usize, seed: u64) -> (SimilarityGraph, PairwiseObjective) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u64 {
        for _ in 0..5 {
            let w = rng.gen_range(0..n as u64);
            if w != v {
                b.add_undirected(v, w, rng.gen_range(0.01..1.0)).unwrap();
            }
        }
    }
    let graph = b.build();
    let utilities: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    (graph, PairwiseObjective::from_alpha(0.9, utilities).unwrap())
}

fn bench_partitions_and_rounds(c: &mut Criterion) {
    let (graph, objective) = instance(20_000, 1);
    let ground: Vec<NodeId> = (0..20_000).map(NodeId::from_index).collect();
    let k = 2_000;
    let mut group = c.benchmark_group("distributed_greedy_20k");
    group.sample_size(10);
    for (partitions, rounds) in [(4usize, 1usize), (16, 1), (4, 8), (16, 8)] {
        for adaptive in [false, true] {
            let name =
                format!("p{partitions}_r{rounds}{}", if adaptive { "_adaptive" } else { "" });
            group.bench_function(name, |b| {
                let config =
                    DistGreedyConfig::new(partitions, rounds).unwrap().adaptive(adaptive).seed(7);
                b.iter(|| distributed_greedy(&graph, &objective, &ground, k, &config).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_greedi_baseline(c: &mut Criterion) {
    let (graph, objective) = instance(20_000, 2);
    let k = 2_000;
    let mut group = c.benchmark_group("greedi_20k");
    group.sample_size(10);
    for machines in [4usize, 16] {
        group.bench_function(format!("m{machines}"), |b| {
            b.iter(|| greedi(&graph, &objective, k, machines, PartitionStyle::Random, 3).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitions_and_rounds, bench_greedi_baseline);
criterion_main!(benches);
