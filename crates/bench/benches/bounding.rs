//! Bounding pass cost: exact vs approximate, in-memory vs dataflow — the
//! runtime side of the §6.2 quality/decisiveness trade-off.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use submod_core::{GraphBuilder, PairwiseObjective, SimilarityGraph};
use submod_dataflow::Pipeline;
use submod_dist::{bound_dataflow, bound_in_memory, BoundingConfig, SamplingStrategy};

fn instance(n: usize, seed: u64) -> (SimilarityGraph, PairwiseObjective) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u64 {
        for _ in 0..5 {
            let w = rng.gen_range(0..n as u64);
            if w != v {
                b.add_undirected(v, w, rng.gen_range(0.01..1.0)).unwrap();
            }
        }
    }
    let graph = b.build();
    // Utility-dominated (α = 0.9 regime) so bounding actually decides.
    let utilities: Vec<f32> = (0..n).map(|_| rng.gen_range(0.5..1.5)).collect();
    (graph, PairwiseObjective::from_alpha(0.9, utilities).unwrap())
}

fn bench_in_memory(c: &mut Criterion) {
    let (graph, objective) = instance(10_000, 1);
    let k = 1_000;
    let mut group = c.benchmark_group("bounding_in_memory_10k");
    group.sample_size(20);
    group.bench_function("exact", |b| {
        b.iter(|| bound_in_memory(&graph, &objective, k, &BoundingConfig::exact()).unwrap())
    });
    for fraction in [0.3, 0.7] {
        group.bench_function(format!("uniform_{fraction}"), |b| {
            let cfg = BoundingConfig::approximate(fraction, SamplingStrategy::Uniform, 3).unwrap();
            b.iter(|| bound_in_memory(&graph, &objective, k, &cfg).unwrap())
        });
        group.bench_function(format!("weighted_{fraction}"), |b| {
            let cfg = BoundingConfig::approximate(fraction, SamplingStrategy::Weighted, 3).unwrap();
            b.iter(|| bound_in_memory(&graph, &objective, k, &cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_dataflow_vs_memory(c: &mut Criterion) {
    let (graph, objective) = instance(2_000, 2);
    let k = 200;
    let cfg = BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 3).unwrap();
    let mut group = c.benchmark_group("bounding_executor_2k");
    group.sample_size(10);
    group.bench_function("in_memory", |b| {
        b.iter(|| bound_in_memory(&graph, &objective, k, &cfg).unwrap())
    });
    group.bench_function("dataflow_4workers", |b| {
        let pipeline = Pipeline::new(4).unwrap();
        b.iter(|| bound_dataflow(&pipeline, &graph, &objective, k, &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_in_memory, bench_dataflow_vs_memory);
criterion_main!(benches);
