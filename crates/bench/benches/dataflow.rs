//! Dataflow engine throughput: shuffles in memory vs through the spill
//! path, the three-way join of the bounding pipeline, and the distributed
//! k-th-largest selection.

use criterion::{criterion_group, criterion_main, Criterion};
use submod_dataflow::{MemoryBudget, Pipeline};

fn bench_group_by_key(c: &mut Criterion) {
    let records: Vec<(u64, u64)> = (0..200_000u64).map(|i| (i % 5_000, i)).collect();
    let mut group = c.benchmark_group("dataflow_group_by_key_200k");
    group.sample_size(10);
    group.bench_function("in_memory", |b| {
        let pipeline = Pipeline::new(8).unwrap();
        let pc = pipeline.from_vec(records.clone());
        b.iter(|| pc.group_by_key().unwrap().count().unwrap())
    });
    group.bench_function("spilling_256KiB", |b| {
        let pipeline = Pipeline::builder()
            .workers(8)
            .memory_budget(MemoryBudget::bytes(256 * 1024))
            .build()
            .unwrap();
        let pc = pipeline.from_vec(records.clone());
        b.iter(|| pc.group_by_key().unwrap().count().unwrap())
    });
    group.bench_function("spilling_256KiB_lz", |b| {
        let pipeline = Pipeline::builder()
            .workers(8)
            .memory_budget(MemoryBudget::bytes(256 * 1024))
            .spill_compression(true)
            .build()
            .unwrap();
        let pc = pipeline.from_vec(records.clone());
        b.iter(|| pc.group_by_key().unwrap().count().unwrap())
    });
    group.finish();
}

fn bench_co_group_3(c: &mut Criterion) {
    let pipeline = Pipeline::new(8).unwrap();
    let a: Vec<(u64, u64)> = (0..100_000u64).map(|i| (i % 10_000, i)).collect();
    let b_side: Vec<(u64, f32)> = (0..20_000u64).map(|i| (i % 10_000, i as f32)).collect();
    let c_side: Vec<(u64, bool)> = (0..10_000u64).map(|i| (i, i % 2 == 0)).collect();
    let pa = pipeline.from_vec(a);
    let pb = pipeline.from_vec(b_side);
    let pc = pipeline.from_vec(c_side);
    let mut group = c.benchmark_group("dataflow_co_group_3");
    group.sample_size(10);
    group.bench_function("130k_records", |b| {
        b.iter(|| pa.co_group_3(&pb, &pc).unwrap().count().unwrap())
    });
    group.finish();
}

fn bench_kth_largest(c: &mut Criterion) {
    let pipeline = Pipeline::new(8).unwrap();
    let values: Vec<f64> = (0..500_000).map(|i| ((i * 31) % 499_979) as f64).collect();
    let pc = pipeline.from_vec(values);
    let mut group = c.benchmark_group("dataflow_kth_largest_500k");
    group.sample_size(10);
    group.bench_function("k_mid", |b| b.iter(|| pc.kth_largest(250_000).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_group_by_key, bench_co_group_3, bench_kth_largest);
criterion_main!(benches);
