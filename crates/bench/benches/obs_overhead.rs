//! The observability overhead gate: the same distributed selection
//! measured with `SUBMOD_TRACE` at `off`, `spans`, and `full` in one
//! process (via `submod_obs::set_mode`, so all three share the runner,
//! the allocator state, and the warmed caches). The `off` path must be
//! a branch on a static — `bench-diff --trace-overhead` fails CI when
//! `full` costs more than a few percent over `off`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use submod_core::{GraphBuilder, NodeId, PairwiseObjective, SimilarityGraph};
use submod_dist::{distributed_greedy, DistGreedyConfig};
use submod_obs::TraceMode;

fn instance(n: usize, seed: u64) -> (SimilarityGraph, PairwiseObjective) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u64 {
        for _ in 0..5 {
            let w = rng.gen_range(0..n as u64);
            if w != v {
                b.add_undirected(v, w, rng.gen_range(0.01..1.0)).unwrap();
            }
        }
    }
    let graph = b.build();
    let utilities: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    (graph, PairwiseObjective::from_alpha(0.9, utilities).unwrap())
}

fn bench_obs_overhead(c: &mut Criterion) {
    let n = 5_000;
    let (graph, objective) = instance(n, 7);
    let ground: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    let k = n / 10;
    let config = DistGreedyConfig::new(4, 4).unwrap().adaptive(true).seed(7);
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    for (label, mode) in [
        ("selection_off", TraceMode::Off),
        ("selection_spans", TraceMode::Spans),
        ("selection_full", TraceMode::Full),
    ] {
        group.bench_function(label, |b| {
            submod_obs::set_mode(mode);
            // Each iteration drains its spans — every mode pays the
            // same drain call (empty at off), buffers stay bounded, and
            // the measured cost is record + drain, exactly what a trace
            // consumer pays.
            b.iter(|| {
                let report = distributed_greedy(&graph, &objective, &ground, k, &config).unwrap();
                drop(submod_obs::take_spans());
                black_box(report)
            })
        });
    }
    group.finish();
    submod_obs::set_mode(TraceMode::Off);
    drop(submod_obs::take_spans());
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
