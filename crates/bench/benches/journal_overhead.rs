//! The journaling overhead gate: the same distributed selection run
//! plain and with the write-ahead journal (fresh WAL per iteration, so
//! every round boundary pays its append + fsync) on one runner in one
//! process. `bench-diff --journal-overhead` fails CI when the journaled
//! path costs more than a few percent over the plain one.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use submod_core::{GraphBuilder, NodeId, PairwiseObjective, SimilarityGraph};
use submod_dist::{distributed_greedy, distributed_greedy_journaled, DistGreedyConfig};

fn instance(n: usize, seed: u64) -> (SimilarityGraph, PairwiseObjective) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u64 {
        for _ in 0..5 {
            let w = rng.gen_range(0..n as u64);
            if w != v {
                b.add_undirected(v, w, rng.gen_range(0.01..1.0)).unwrap();
            }
        }
    }
    let graph = b.build();
    let utilities: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    (graph, PairwiseObjective::from_alpha(0.9, utilities).unwrap())
}

fn bench_journal_overhead(c: &mut Criterion) {
    // Large enough that each round does realistic work: the journal
    // appends + fsyncs a fixed handful of records per run (header, one
    // per round, finish), so its cost is a constant that must be
    // measured against real round runtimes, not toy ones.
    let n = 20_000;
    let (graph, objective) = instance(n, 7);
    let ground: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    let k = n / 10;
    let config = DistGreedyConfig::new(4, 4).unwrap().adaptive(true).seed(7);
    // The WAL lives on tmpfs when available: the gate measures the cost
    // of the journaling *code path* (serialization, frame checksums,
    // write + sync calls per round), not the latency lottery of the CI
    // runner's disk — a single slow physical fsync would dwarf the
    // selection and make the gate meaningless.
    let dir = if std::path::Path::new("/dev/shm").is_dir() {
        std::path::PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    let wal = dir.join(format!("submod-journal-overhead-{}.wal", std::process::id()));

    let mut group = c.benchmark_group("journal_overhead");
    group.sample_size(10);
    group.bench_function("selection_plain", |b| {
        b.iter(|| black_box(distributed_greedy(&graph, &objective, &ground, k, &config).unwrap()))
    });
    group.bench_function("selection_journaled", |b| {
        b.iter(|| {
            // A fresh WAL each iteration: the measured cost is the full
            // run-header + per-round append/fsync path, never a replay.
            let _ = std::fs::remove_file(&wal);
            black_box(
                distributed_greedy_journaled(&graph, &objective, &ground, k, &config, &wal)
                    .unwrap(),
            )
        })
    });
    group.finish();
    let _ = std::fs::remove_file(&wal);
}

criterion_group!(benches, bench_journal_overhead);
criterion_main!(benches);
