//! Compute-kernel microbenches: runtime-dispatched SIMD vs the scalar
//! reference, and the register-blocked batch scan vs a per-query loop.
//! The graph-build macro numbers these feed are in `benches/knn.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use submod_kernels::{backend, batch_top_k, dot, scalar};

fn vectors(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut s = seed;
    (0..n * dim)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Single-pair dot products at the paper's two embedding widths (64-d
/// CIFAR, 2048-d ImageNet): the dispatched backend against the scalar
/// reference it must match bitwise.
fn bench_dot(c: &mut Criterion) {
    for dim in [64usize, 2048] {
        let a = vectors(1, dim, 1);
        let b = vectors(1, dim, 2);
        let mut group = c.benchmark_group(format!("kernel_dot_{dim}d"));
        group.bench_function(backend().name(), |bench| bench.iter(|| dot(&a, &b)));
        group.bench_function("scalar_ref", |bench| bench.iter(|| scalar::dot(&a, &b)));
        group.finish();
    }
}

/// The batch primitive the graph build rides: 256 queries × 10 k rows ×
/// 64-d, blocked scan vs issuing the same queries one at a time (both on
/// the dispatched backend — the delta isolates the blocking win).
fn bench_batch_top_k(c: &mut Criterion) {
    let dim = 64;
    let rows = vectors(10_000, dim, 3);
    let norms: Vec<f32> = rows.chunks_exact(dim).map(|r| scalar::dot(r, r).sqrt()).collect();
    let queries = vectors(256, dim, 4);
    let mut group = c.benchmark_group("kernel_batch_top_k_10k_rows_64d");
    group.sample_size(10);
    group.bench_function("blocked_256q", |bench| {
        bench.iter(|| batch_top_k(&queries, &rows, &norms, dim, 10, &[]))
    });
    group.bench_function("per_query_256q", |bench| {
        bench.iter(|| {
            (0..256)
                .map(|qi| {
                    batch_top_k(&queries[qi * dim..(qi + 1) * dim], &rows, &norms, dim, 10, &[])
                })
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dot, bench_batch_top_k);
criterion_main!(benches);
