//! Microbenchmarks for the addressable priority queue — the innermost data
//! structure of Algorithm 2.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use submod_core::AddressablePq;

fn priorities(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 2_654_435_761) % 1_000_003) as f64 / 7.0).collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("pq_build");
    for n in [1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = priorities(n);
            b.iter(|| AddressablePq::with_priorities(black_box(p.clone())));
        });
    }
    group.finish();
}

fn bench_pop_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("pq_pop_all");
    for n in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = priorities(n);
            b.iter(|| {
                let mut pq = AddressablePq::with_priorities(p.clone());
                while let Some(top) = pq.pop_max() {
                    black_box(top);
                }
            });
        });
    }
    group.finish();
}

fn bench_greedy_mix(c: &mut Criterion) {
    // The pop + decrease-neighbors pattern of Algorithm 2: one pop followed
    // by ~10 decrease_by calls, as with a 10-NN graph.
    let mut group = c.benchmark_group("pq_greedy_mix");
    for n in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = priorities(n);
            b.iter(|| {
                let mut pq = AddressablePq::with_priorities(p.clone());
                for step in 0..n / 20 {
                    let (v, _) = pq.pop_max().expect("non-empty");
                    for d in 1..=10u32 {
                        let w = (v + d * 97 + step as u32) % n as u32;
                        if pq.contains(w) {
                            pq.decrease_by(w, 0.01 * f64::from(d));
                        }
                    }
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_pop_all, bench_greedy_mix);
criterion_main!(benches);
