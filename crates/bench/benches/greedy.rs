//! Centralized greedy variants (paper §3 "Related optimizations"):
//! priority-queue greedy vs lazy greedy vs stochastic greedy vs the naive
//! Algorithm 1 oracle — quantifying the claim that lazy evaluation is not
//! advantageous for pairwise objectives.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use submod_core::{
    greedy_select, lazy_greedy_select, naive_greedy_select, stochastic_greedy_select, GraphBuilder,
    PairwiseObjective, SimilarityGraph,
};

fn instance(n: usize, degree: usize, seed: u64) -> (SimilarityGraph, PairwiseObjective) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u64 {
        for _ in 0..degree {
            let w = rng.gen_range(0..n as u64);
            if w != v {
                b.add_undirected(v, w, rng.gen_range(0.01..1.0)).unwrap();
            }
        }
    }
    let graph = b.build();
    let utilities: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    (graph, PairwiseObjective::from_alpha(0.9, utilities).unwrap())
}

fn bench_variants(c: &mut Criterion) {
    let (graph, objective) = instance(5_000, 5, 1);
    let k = 500;
    let mut group = c.benchmark_group("greedy_variants_5k");
    group.sample_size(20);
    group.bench_function("priority_queue", |b| {
        b.iter(|| greedy_select(&graph, &objective, k).unwrap())
    });
    group.bench_function("lazy", |b| b.iter(|| lazy_greedy_select(&graph, &objective, k).unwrap()));
    group.bench_function("stochastic_eps0.1", |b| {
        b.iter(|| stochastic_greedy_select(&graph, &objective, k, 0.1, 7).unwrap())
    });
    group.sample_size(10);
    group.bench_function("naive_oracle", |b| {
        b.iter(|| naive_greedy_select(&graph, &objective, k).unwrap())
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_scaling");
    group.sample_size(10);
    for n in [2_000usize, 10_000, 50_000] {
        let (graph, objective) = instance(n, 5, 2);
        group.bench_function(format!("pq_n{n}_k10pct"), |b| {
            b.iter(|| greedy_select(&graph, &objective, n / 10).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_scaling);
criterion_main!(benches);
