//! Figures 3, 4, 12, 13, 14, 15: normalized-score heatmaps over
//! partitions × rounds × α × subset size, with and without adaptive
//! partitioning, on the CIFAR-like and ImageNet-like datasets.

use crate::common::{run_heatmap, BenchCtx};
use crate::output::{write_artifact, Matrix};
use submod_data::SelectionInstance;

/// Figure 3 / Figure 12: CIFAR-like, fixed partitioning.
pub fn fig3(ctx: &BenchCtx) {
    println!("figure 3 / 12: CIFAR-like, non-adaptive (γ = 0.75)");
    heatmap_figure(ctx, &ctx.cifar(), "cifar", false, "fig3_cifar_nonadaptive");
}

/// Figure 13: ImageNet-like, fixed partitioning.
pub fn fig13(ctx: &BenchCtx) {
    println!("figure 13: ImageNet-like, non-adaptive (γ = 0.75)");
    heatmap_figure(ctx, &ctx.imagenet(), "imagenet", false, "fig13_imagenet_nonadaptive");
}

/// Figure 4 / Figure 14: CIFAR-like, adaptive partitioning.
pub fn fig4(ctx: &BenchCtx) {
    println!("figure 4 / 14: CIFAR-like, adaptive partitioning (γ = 0.75)");
    heatmap_figure(ctx, &ctx.cifar(), "cifar", true, "fig4_cifar_adaptive");
}

/// Figure 15: ImageNet-like, adaptive partitioning.
pub fn fig15(ctx: &BenchCtx) {
    println!("figure 15: ImageNet-like, adaptive partitioning (γ = 0.75)");
    heatmap_figure(ctx, &ctx.imagenet(), "imagenet", true, "fig15_imagenet_adaptive");
}

fn heatmap_figure(
    ctx: &BenchCtx,
    instance: &SelectionInstance,
    dataset: &str,
    adaptive: bool,
    artifact: &str,
) {
    println!(
        "dataset: {} points, {} undirected edges, avg degree {:.1}",
        instance.len(),
        instance.graph.num_undirected_edges(),
        instance.graph.avg_degree()
    );
    let axis = ctx.grid_axis();
    let groups =
        run_heatmap(instance, &ctx.alphas(), &ctx.subset_fractions(), &axis, adaptive, 0.75);

    let mut csv =
        String::from("dataset,adaptive,alpha,subset,partitions,rounds,score,normalized\n");
    for group in &groups {
        let normalizer = group.normalizer();
        let mut matrix = Matrix {
            title: format!(
                "{dataset} {:.0} % subset (k = {}), α = {} ({}, 100 = centralized {:.2})",
                group.subset_fraction * 100.0,
                group.k,
                group.alpha,
                if adaptive { "adaptive" } else { "non-adaptive" },
                group.centralized,
            ),
            row_label: "parts",
            col_label: "rounds",
            rows: axis.clone(),
            cols: axis.clone(),
            values: Vec::new(),
        };
        for &p in &axis {
            for &r in &axis {
                let cell = group
                    .cells
                    .iter()
                    .find(|c| c.partitions == p && c.rounds == r)
                    .expect("cell exists");
                matrix.values.push(normalizer.normalize(cell.score));
                csv.push_str(&format!(
                    "{dataset},{adaptive},{},{},{p},{r},{:.4},{:.2}\n",
                    group.alpha,
                    group.subset_fraction,
                    cell.score,
                    normalizer.normalize(cell.score)
                ));
            }
        }
        matrix.print();
    }
    let _ = write_artifact(&ctx.out_dir, &format!("{artifact}.csv"), &csv);

    // Shape assertions mirrored from the paper's prose, printed as a
    // verdict line so EXPERIMENTS.md can cite them.
    let verdicts = shape_verdicts(&groups, &axis);
    for v in &verdicts {
        println!("  {v}");
    }
}

/// Checks the paper's qualitative claims on the sweep results.
fn shape_verdicts(groups: &[crate::common::HeatmapGroup], axis: &[usize]) -> Vec<String> {
    let mut out = Vec::new();
    let last = *axis.last().expect("axis non-empty");
    let first = axis[0];
    let mut rounds_help = 0usize;
    let mut parts_hurt = 0usize;
    let mut total = 0usize;
    for group in groups {
        let score = |p: usize, r: usize| {
            group
                .cells
                .iter()
                .find(|c| c.partitions == p && c.rounds == r)
                .map(|c| c.score)
                .unwrap_or(f64::NAN)
        };
        total += 1;
        if score(last, last) >= score(last, first) {
            rounds_help += 1;
        }
        if score(first, first) >= score(last, first) {
            parts_hurt += 1;
        }
    }
    out.push(format!(
        "shape check: more rounds helped in {rounds_help}/{total} groups; \
         fewer partitions scored higher in {parts_hurt}/{total} groups"
    ));
    out
}
