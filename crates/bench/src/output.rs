//! Table rendering and artifact writing for the experiment harness.

use std::fs;
use std::path::{Path, PathBuf};

/// A rendered matrix (partitions × rounds, like the paper's heatmaps).
pub struct Matrix {
    pub title: String,
    pub row_label: &'static str,
    pub col_label: &'static str,
    pub rows: Vec<usize>,
    pub cols: Vec<usize>,
    /// Row-major values aligned with `rows × cols`.
    pub values: Vec<f64>,
}

impl Matrix {
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.values[row * self.cols.len() + col]
    }

    /// Pretty-prints the matrix in the layout of the paper's figures.
    pub fn print(&self) {
        println!("\n── {} ──", self.title);
        print!("{:>12} │", format!("{}\\{}", self.row_label, self.col_label));
        for c in &self.cols {
            print!("{c:>7}");
        }
        println!();
        println!("{:─>12}─┼{:─>width$}", "", "", width = self.cols.len() * 7);
        for (ri, r) in self.rows.iter().enumerate() {
            print!("{r:>12} │");
            for ci in 0..self.cols.len() {
                print!("{:>7.0}", self.value(ri, ci));
            }
            println!();
        }
    }
}

/// Writes an artifact file under the output directory, creating it as
/// needed. Prints the path so users can find it.
pub fn write_artifact(out_dir: &Path, name: &str, contents: &str) -> std::io::Result<PathBuf> {
    fs::create_dir_all(out_dir)?;
    let path = out_dir.join(name);
    fs::write(&path, contents)?;
    println!("  wrote {}", path.display());
    Ok(path)
}

/// Formats a row-oriented text table with a header.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n── {title} ──");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", cell, width = widths[i.min(widths.len() - 1)]));
        }
        s
    };
    println!("{}", line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("{}", "─".repeat(widths.iter().sum::<usize>() + widths.len() * 2));
    for row in rows {
        println!("{}", line(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_value_is_row_major() {
        let m = Matrix {
            title: "t".into(),
            row_label: "r",
            col_label: "c",
            rows: vec![1, 2],
            cols: vec![10, 20, 30],
            values: vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
        };
        assert_eq!(m.value(0, 0), 0.0);
        assert_eq!(m.value(0, 2), 2.0);
        assert_eq!(m.value(1, 0), 3.0);
        assert_eq!(m.value(1, 2), 5.0);
    }

    #[test]
    fn write_artifact_creates_directories() {
        let dir = std::env::temp_dir()
            .join(format!("submod-artifact-test-{}", std::process::id()))
            .join("nested");
        let path = write_artifact(&dir, "x.csv", "a,b\n").unwrap();
        assert!(path.exists());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }
}
