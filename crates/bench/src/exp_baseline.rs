//! Baseline comparison (§2 / §3 systems claims): GreeDi / RandGreeDi's
//! centralized-merge memory grows with the machine count, while the
//! multi-round algorithm's per-machine footprint stays one partition.
//! Also reproduces §3's DRAM arithmetic for the priority-queue state.

use crate::common::{cell_seed, BenchCtx};
use crate::output::{print_table, write_artifact};
use submod_core::{greedy_select, NodeId};
use submod_dist::{distributed_greedy, greedi, DistGreedyConfig, PartitionStyle};

/// Runs the baseline comparison on the CIFAR-like dataset.
pub fn baselines(ctx: &BenchCtx) {
    println!("baselines: GreeDi / RandGreeDi vs multi-round distributed greedy");
    let instance = ctx.cifar();
    let objective = instance.objective(0.9).expect("objective");
    let k = instance.len() / 10;
    let ground: Vec<NodeId> = (0..instance.len()).map(NodeId::from_index).collect();
    let centralized =
        greedy_select(&instance.graph, &objective, k).expect("greedy").objective_value();

    let mut rows = Vec::new();
    let mut csv = String::from("algorithm,machines,score_pct,merge_points,merge_kib\n");
    for &machines in &[2usize, 4, 8, 16] {
        for (name, style) in
            [("GreeDi", PartitionStyle::Arbitrary), ("RandGreeDi", PartitionStyle::Random)]
        {
            let report =
                greedi(&instance.graph, &objective, k, machines, style, 11).expect("greedi");
            let pct = report.selection.objective_value() / centralized * 100.0;
            rows.push(vec![
                name.to_string(),
                machines.to_string(),
                format!("{pct:.2} %"),
                report.merge.union_size.to_string(),
                format!("{} KiB", report.merge.merge_memory_bytes / 1024),
            ]);
            csv.push_str(&format!(
                "{name},{machines},{pct:.3},{},{}\n",
                report.merge.union_size,
                report.merge.merge_memory_bytes / 1024
            ));
        }
        // The multi-round algorithm: per-machine footprint = one partition.
        let config = DistGreedyConfig::new(machines, 8)
            .expect("config")
            .adaptive(true)
            .seed(cell_seed(machines, 8, 0.9, k));
        let report = distributed_greedy(&instance.graph, &objective, &ground, k, &config)
            .expect("distributed");
        let pct = report.selection.objective_value() / centralized * 100.0;
        // Hash keying balances partitions binomially: n/m in expectation,
        // not a hard ceiling.
        let partition_points = instance.len().div_ceil(machines);
        let partition_kib = partition_points as u64 * (16 + 10 * 16) / 1024;
        rows.push(vec![
            "multi-round (8r, adaptive)".to_string(),
            machines.to_string(),
            format!("{pct:.2} %"),
            format!("~{partition_points}/machine"),
            format!("{partition_kib} KiB"),
        ]);
        csv.push_str(&format!(
            "multi-round,{machines},{pct:.3},{partition_points},{partition_kib}\n"
        ));
    }
    print_table(
        "quality and single-machine memory (merge column: points one machine must hold)",
        &["algorithm", "machines", "score", "merge holds", "memory"],
        &rows,
    );
    let _ = write_artifact(&ctx.out_dir, "baselines_greedi.csv", &csv);

    // §3's DRAM arithmetic at the paper's scale, reproduced exactly:
    // 5 B keys+values (16 B) + 10 neighbors (8 B id + 8 B distance).
    let five_b = 5_000_000_000u64;
    let bytes = five_b * 16 + five_b * 10 * 16;
    println!(
        "\n§3 check: 5 B-point priority queue + 10-NN lists = {:.0} GB (paper: 880 GB)",
        bytes as f64 / 1e9
    );
}
