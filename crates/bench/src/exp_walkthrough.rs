//! Figures 1 and 2: the paper's small walkthrough examples, runnable from
//! the harness (the `bounding_trace` / `distributed_greedy_trace` examples
//! carry the fully annotated versions).

use crate::common::BenchCtx;
use crate::output::print_table;
use submod_core::{greedy_select, GraphBuilder, NodeId, PairwiseObjective};
use submod_dist::{bound_in_memory, distributed_greedy, BoundingConfig, DistGreedyConfig};

/// Figure 1: bounding on 6 points for a 50 % subset.
pub fn fig1(_ctx: &BenchCtx) {
    println!("figure 1: distributed bounding walkthrough (6 points, 50 % subset)");
    let mut builder = GraphBuilder::new(6);
    builder.add_undirected(0, 1, 0.8).expect("edge");
    builder.add_undirected(2, 3, 0.7).expect("edge");
    builder.add_undirected(1, 2, 0.3).expect("edge");
    let graph = builder.build();
    let objective =
        PairwiseObjective::from_alpha(0.7, vec![0.9, 0.6, 0.8, 0.5, 0.75, 0.1]).expect("objective");

    let mut rows = Vec::new();
    for v in 0..6u64 {
        let vid = NodeId::new(v);
        rows.push(vec![
            v.to_string(),
            format!("{:.3}", objective.utility(vid)),
            format!(
                "{:.3}",
                objective.utility(vid) - objective.ratio() * graph.weighted_degree(vid)
            ),
            format!("{:.3}", objective.utility(vid)),
        ]);
    }
    print_table("initial bounds", &["point", "utility", "U_min", "U_max"], &rows);

    let outcome = bound_in_memory(&graph, &objective, 3, &BoundingConfig::exact()).expect("bound");
    println!(
        "exact bounding: {} grow / {} shrink passes, included {:?}, excluded {}, remaining {:?}",
        outcome.grow_rounds,
        outcome.shrink_rounds,
        outcome.included.iter().map(|n| n.raw()).collect::<Vec<_>>(),
        outcome.excluded_count,
        outcome.remaining.iter().map(|n| n.raw()).collect::<Vec<_>>(),
    );
}

/// Figure 2: distributed greedy on 10 points, k = 3, 3 partitions, 2
/// rounds.
pub fn fig2(_ctx: &BenchCtx) {
    println!("figure 2: distributed greedy walkthrough (10 points, k = 3, 3 partitions, 2 rounds)");
    let mut builder = GraphBuilder::new(10);
    for v in 0..10u64 {
        builder.add_undirected(v, (v + 1) % 10, 0.6).expect("edge");
    }
    let graph = builder.build();
    let utilities: Vec<f32> = (0..10).map(|i| 1.0 - i as f32 * 0.07).collect();
    let objective = PairwiseObjective::from_alpha(0.8, utilities).expect("objective");

    let config = DistGreedyConfig::new(3, 2).expect("config").seed(1);
    let report = distributed_greedy(
        &graph,
        &objective,
        &(0..10).map(NodeId::new).collect::<Vec<_>>(),
        3,
        &config,
    )
    .expect("distributed");
    let rows: Vec<Vec<String>> = report
        .rounds
        .iter()
        .map(|s| {
            vec![
                s.round.to_string(),
                s.input_size.to_string(),
                s.target.to_string(),
                s.partitions.to_string(),
                s.output_size.to_string(),
            ]
        })
        .collect();
    print_table("per-round", &["round", "in", "Δ target", "partitions", "out"], &rows);
    let central = greedy_select(&graph, &objective, 3).expect("greedy");
    println!(
        "distributed picks {:?} (f = {:.3}); centralized picks {:?} (f = {:.3})",
        report.selection.selected().iter().map(|n| n.raw()).collect::<Vec<_>>(),
        report.selection.objective_value(),
        central.selected().iter().map(|n| n.raw()).collect::<Vec<_>>(),
        central.objective_value(),
    );
}
