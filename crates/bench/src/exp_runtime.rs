//! Table 4 and §6.3: runtime and scalability on the perturbed dataset.
//!
//! The paper's 13 B-point runs took hours on an internal cluster; we run
//! the same algorithm matrix on a materialized slice of the virtual
//! perturbed dataset (scaled by `--scale`) and report wall-clock plus raw
//! scores, and stream a larger virtual slice through the dataflow engine
//! to demonstrate the larger-than-memory path.

use crate::common::BenchCtx;
use crate::output::{print_table, write_artifact};
use std::time::Instant;
use submod_core::{NodeId, PairwiseObjective};
use submod_data::{build_instance, DatasetConfig, PerturbedDataset};
use submod_dist::{
    distributed_greedy, distributed_greedy_journaled, select_subset, BoundingConfig,
    DistGreedyConfig, PipelineConfig, SamplingStrategy,
};

/// Table 4: runtimes of bounding / greedy combinations on the perturbed
/// dataset, 16 partitions.
pub fn table4(ctx: &BenchCtx) {
    println!("table 4: runtimes on the perturbed dataset (16 partitions)");
    let (graph, utilities, virtual_points) = perturbed_slice(ctx);
    println!(
        "materialized slice: {} points ({} virtual), {} edges",
        graph.num_nodes(),
        virtual_points,
        graph.num_undirected_edges()
    );
    let objective = PairwiseObjective::from_alpha(0.9, utilities).expect("objective");
    let ground: Vec<NodeId> = (0..graph.num_nodes()).map(NodeId::from_index).collect();

    let mut rows = Vec::new();
    let mut csv = String::from("algorithm,subset,seconds,score\n");
    let mut timed = |name: &str, frac: f64, f: &dyn Fn(usize) -> f64| {
        let k = ((graph.num_nodes() as f64 * frac) as usize).max(1);
        let start = Instant::now();
        let score = f(k);
        let secs = start.elapsed().as_secs_f64();
        rows.push(vec![
            name.to_string(),
            format!("{:.0} %", frac * 100.0),
            format!("{secs:.2} s"),
            format!("{score:.1}"),
        ]);
        csv.push_str(&format!("{name},{frac},{secs:.4},{score:.4}\n"));
    };

    // Bounding-only rows (10 % subset, as in the paper).
    for (name, strategy) in [
        ("approx bounding, uniform", SamplingStrategy::Uniform),
        ("approx bounding, weighted", SamplingStrategy::Weighted),
    ] {
        timed(name, 0.1, &|k| {
            let config = BoundingConfig::approximate(0.3, strategy, 5).expect("config");
            let outcome =
                submod_dist::bound_in_memory(&graph, &objective, k, &config).expect("bounding");
            (outcome.included.len() + outcome.excluded_count) as f64
        });
    }

    // Greedy after bounding (8 rounds).
    for (name, strategy) in [
        ("8-round greedy after uniform bounding", SamplingStrategy::Uniform),
        ("8-round greedy after weighted bounding", SamplingStrategy::Weighted),
    ] {
        timed(name, 0.1, &|k| {
            let config = PipelineConfig::with_bounding(
                BoundingConfig::approximate(0.3, strategy, 5).expect("config"),
                DistGreedyConfig::new(16, 8).expect("config").adaptive(true).seed(2),
            );
            select_subset(&graph, &objective, k, &config)
                .expect("pipeline")
                .selection
                .objective_value()
        });
    }

    // Greedy without bounding: 1 / 2 / 8 rounds for 10 % and 50 % subsets.
    // With `--journal DIR` each of these runs through the write-ahead
    // journal (one WAL per cell) — crash one with
    // SUBMOD_FAULTS=crash-round-N and rerun with --resume to continue it.
    for rounds in [8usize, 2, 1] {
        for frac in [0.1, 0.5] {
            let name = format!("{rounds}-round greedy, no bounding");
            let journal =
                ctx.journal_path(&format!("table4_greedy_{rounds}r_{:02.0}pct", frac * 100.0));
            timed(&name, frac, &|k| {
                let config =
                    DistGreedyConfig::new(16, rounds).expect("config").adaptive(true).seed(2);
                match &journal {
                    Some(path) => {
                        distributed_greedy_journaled(&graph, &objective, &ground, k, &config, path)
                            .expect("journaled distributed")
                            .0
                            .selection
                            .objective_value()
                    }
                    None => distributed_greedy(&graph, &objective, &ground, k, &config)
                        .expect("distributed")
                        .selection
                        .objective_value(),
                }
            });
        }
    }

    if ctx.journal.is_some() {
        let snap = submod_obs::snapshot();
        let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        println!(
            "journal: {} records written, {} replayed, {} torn bytes truncated, {} fsyncs; \
             faults: {} injected, {} retried",
            get("journal.records_written"),
            get("journal.records_replayed"),
            get("journal.torn_bytes"),
            get("journal.syncs"),
            get("faults.injected"),
            get("faults.retries"),
        );
    }

    print_table(
        "runtimes (score column: objective, or decided points for bounding-only rows)",
        &["algorithm", "subset", "wall clock", "score"],
        &rows,
    );
    let _ = write_artifact(&ctx.out_dir, "table4_runtime.csv", &csv);
}

/// §6.3: scores vs rounds at scale, plus bounding decisions.
pub fn sec63(ctx: &BenchCtx) {
    println!("§6.3: perturbed-dataset scalability (16 partitions, α = 0.9)");
    let (graph, utilities, virtual_points) = perturbed_slice(ctx);
    println!(
        "materialized slice: {} points standing in for a {}-point virtual dataset",
        graph.num_nodes(),
        virtual_points
    );
    let objective = PairwiseObjective::from_alpha(0.9, utilities).expect("objective");
    let ground: Vec<NodeId> = (0..graph.num_nodes()).map(NodeId::from_index).collect();

    let mut rows = Vec::new();
    let mut csv = String::from("subset,rounds,score\n");
    for frac in [0.1, 0.5] {
        let k = ((graph.num_nodes() as f64 * frac) as usize).max(1);
        let mut last = f64::NEG_INFINITY;
        let mut monotone = true;
        for rounds in [1usize, 2, 8] {
            let config = DistGreedyConfig::new(16, rounds).expect("config").adaptive(false).seed(3);
            let score = distributed_greedy(&graph, &objective, &ground, k, &config)
                .expect("distributed")
                .selection
                .objective_value();
            monotone &= score >= last;
            last = score;
            rows.push(vec![
                format!("{:.0} %", frac * 100.0),
                rounds.to_string(),
                format!("{score:.2}"),
            ]);
            csv.push_str(&format!("{frac},{rounds},{score:.4}\n"));
        }
        println!(
            "{:.0} % subset: scores increase with rounds: {}",
            frac * 100.0,
            if monotone { "yes (matches §6.3)" } else { "no" }
        );
    }
    print_table(
        "raw scores (no centralized reference at scale)",
        &["subset", "rounds", "score"],
        &rows,
    );

    // Bounding at scale (10 % subset): the paper reports exact bounding
    // excluding 10 % and approximate ~60 %.
    let k = graph.num_nodes() / 10;
    for (name, config) in [
        ("exact", BoundingConfig::exact()),
        (
            "uniform-30%",
            BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 7).expect("config"),
        ),
        (
            "weighted-30%",
            BoundingConfig::approximate(0.3, SamplingStrategy::Weighted, 7).expect("config"),
        ),
    ] {
        let outcome =
            submod_dist::bound_in_memory(&graph, &objective, k, &config).expect("bounding");
        println!(
            "bounding {name}: included {:.3} %, excluded {:.1} % of the slice",
            outcome.included.len() as f64 / graph.num_nodes() as f64 * 100.0,
            outcome.excluded_count as f64 / graph.num_nodes() as f64 * 100.0
        );
        csv.push_str(&format!(
            "bounding-{name},{},{}\n",
            outcome.included.len(),
            outcome.excluded_count
        ));
    }
    let _ = write_artifact(&ctx.out_dir, "sec63_scalability.csv", &csv);
}

/// Builds the perturbed-dataset slice: an ImageNet-like base expanded by a
/// virtual factor of 10 000 (the paper's blowup), materialized at factor
/// `5 × scale` for in-memory execution.
fn perturbed_slice(ctx: &BenchCtx) -> (submod_core::SimilarityGraph, Vec<f32>, u64) {
    let per_class = ((100.0 * ctx.scale).round() as usize).max(2);
    let base = build_instance(
        &DatasetConfig::imagenet_like().with_points_per_class(per_class).with_seed(0x5CA1E),
    )
    .expect("base instance");
    let perturbed = PerturbedDataset::new(&base, 10_000, 0.02, 31).expect("perturbed");
    let factor = if ctx.quick { 2 } else { 5 };
    let (graph, utilities) = perturbed.materialize(factor).expect("materialize");
    (graph, utilities, perturbed.total_points())
}
