//! Table 3: worst-case partitioning ablation (§6.4) — the centralized
//! solution is adversarially placed into a single partition in round 1.

use crate::common::BenchCtx;
use crate::output::{print_table, write_artifact};
use submod_core::{greedy_select, NodeId, ScoreNormalizer};
use submod_dist::{distributed_greedy, DistGreedyConfig};

/// Runs Table 3 on the CIFAR-like dataset: 10 partitions, 10 % subset,
/// random vs adversarial first-round assignment, non-adaptive and
/// adaptive, rounds ∈ {1, 8, 16, 32}.
pub fn table3(ctx: &BenchCtx) {
    println!("table 3: worst-case partitioning ablation (10 partitions, 10 % subset)");
    let instance = ctx.cifar();
    let objective = instance.objective(0.9).expect("objective");
    let k = instance.len() / 10;
    let ground: Vec<NodeId> = (0..instance.len()).map(NodeId::from_index).collect();
    let central = greedy_select(&instance.graph, &objective, k).expect("greedy");
    let centralized = central.objective_value();
    let rounds_axis: &[usize] = if ctx.quick { &[1, 8] } else { &[1, 8, 16, 32] };

    // Collect every raw score first so the normalization group matches the
    // paper's convention.
    let mut raw: Vec<(bool, bool, usize, f64)> = Vec::new(); // (adversarial, adaptive, rounds, score)
    for &adversarial in &[false, true] {
        for &adaptive in &[false, true] {
            for &rounds in rounds_axis {
                let mut config = DistGreedyConfig::new(10, rounds)
                    .expect("config")
                    .adaptive(adaptive)
                    .seed(17 + rounds as u64);
                if adversarial {
                    config = config.adversarial_first_round(central.selected().to_vec());
                }
                let score = distributed_greedy(&instance.graph, &objective, &ground, k, &config)
                    .expect("distributed")
                    .selection
                    .objective_value();
                raw.push((adversarial, adaptive, rounds, score));
            }
        }
    }
    let normalizer =
        ScoreNormalizer::new(centralized, &raw.iter().map(|&(_, _, _, s)| s).collect::<Vec<_>>());

    let lookup = |adversarial: bool, adaptive: bool, rounds: usize| -> f64 {
        raw.iter()
            .find(|&&(a, d, r, _)| a == adversarial && d == adaptive && r == rounds)
            .map(|&(_, _, _, s)| normalizer.normalize(s))
            .unwrap_or(f64::NAN)
    };

    let mut rows = Vec::new();
    let mut csv = String::from("partitioning,rounds,nonadaptive_pct,adaptive_pct\n");
    for &(label, adversarial) in
        &[("random partitioning", false), ("solution in one partition", true)]
    {
        for &rounds in rounds_axis {
            let na = lookup(adversarial, false, rounds);
            let ad = lookup(adversarial, true, rounds);
            rows.push(vec![
                label.to_string(),
                rounds.to_string(),
                format!("{na:.0} %"),
                format!("{ad:.0} %"),
            ]);
            csv.push_str(&format!("{label},{rounds},{na:.2},{ad:.2}\n"));
        }
    }
    print_table(
        "normalized scores (non-adaptive / adaptive)",
        &["partitioning", "rounds", "non-adaptive", "adaptive"],
        &rows,
    );
    let _ = write_artifact(&ctx.out_dir, "table3_worstcase.csv", &csv);

    // Paper's headline: the multi-round penalty for worst-case
    // partitioning is only a few points.
    if rounds_axis.contains(&32) {
        let gap_1 = lookup(false, false, 1) - lookup(true, false, 1);
        let gap_32 = lookup(false, false, 32) - lookup(true, false, 32);
        println!(
            "\nworst-case penalty: {gap_1:.0} points at 1 round vs {gap_32:.0} points at 32 rounds \
             (paper: 17 → 2-3 points)"
        );
    }
}
