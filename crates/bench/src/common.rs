//! Shared experiment infrastructure: dataset construction, sweep grids,
//! and the heatmap runner behind Figures 3/4/12–17.

use std::path::PathBuf;
use submod_core::{greedy_select, PairwiseObjective, ScoreNormalizer, SimilarityGraph};
use submod_data::{build_instance, DatasetConfig, SelectionInstance};
use submod_dist::{distributed_greedy, DeltaSchedule, DistGreedyConfig};

/// Which backing the experiment graphs run on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphStoreMode {
    /// Owned in-memory CSR arrays (the default).
    Mem,
    /// The on-disk store: the graph is written once and reopened as a
    /// read-only memory mapping, so adjacency costs zero driver heap.
    Mmap,
}

/// Global harness context parsed from the command line.
#[derive(Clone, Debug)]
pub struct BenchCtx {
    /// Output directory for CSV/JSON artifacts.
    pub out_dir: PathBuf,
    /// Dataset scale factor (1.0 = the paper's sizes).
    pub scale: f64,
    /// Quick mode: coarser grids for smoke runs.
    pub quick: bool,
    /// Report peak driver-side bytes for the bounding drivers, so the
    /// larger-than-memory claim is a printed number instead of prose.
    pub report_memory: bool,
    /// Graph backing selected with `--graph-store mem|mmap`.
    pub graph_store: GraphStoreMode,
    /// Directory journaled experiments write their WALs under
    /// (`--journal DIR`); `None` runs everything unjournaled.
    pub journal: Option<PathBuf>,
    /// Resume from existing journals instead of starting fresh
    /// (`--resume`; only meaningful with `--journal`).
    pub resume: bool,
}

impl BenchCtx {
    /// CIFAR-100-like instance at the configured scale (default scale 0.1
    /// ⇒ 5 000 points; `--scale 1.0` ⇒ the paper's 50 000).
    pub fn cifar(&self) -> SelectionInstance {
        build_instance(&DatasetConfig::cifar100_like().scaled(self.scale))
            .expect("cifar-like instance")
    }

    /// ImageNet-like instance: 1 000 classes at the configured scale
    /// (default ⇒ 20 points per class = 20 000 points).
    pub fn imagenet(&self) -> SelectionInstance {
        let per_class = ((200.0 * self.scale).round() as usize).max(2);
        build_instance(&DatasetConfig::imagenet_like().with_points_per_class(per_class))
            .expect("imagenet-like instance")
    }

    /// The paper's partition/round axis {1, 2, 4, 8, 16, 32}.
    pub fn grid_axis(&self) -> Vec<usize> {
        if self.quick {
            vec![1, 4, 16]
        } else {
            vec![1, 2, 4, 8, 16, 32]
        }
    }

    /// The paper's α axis {0.9, 0.5, 0.1}.
    pub fn alphas(&self) -> Vec<f64> {
        if self.quick {
            vec![0.9]
        } else {
            vec![0.9, 0.5, 0.1]
        }
    }

    /// The paper's subset-size axis {10 %, 50 %, 80 %}.
    pub fn subset_fractions(&self) -> Vec<f64> {
        if self.quick {
            vec![0.1]
        } else {
            vec![0.1, 0.5, 0.8]
        }
    }

    /// The write-ahead-journal path for one journaled selection, when
    /// `--journal DIR` was given. Each selection gets its own
    /// `<dir>/<tag>.wal` (the run header refuses cross-configuration
    /// splices, so journals are never shared between selections). A
    /// fresh run removes any stale journal first; with `--resume` an
    /// existing journal is replayed to its last complete round boundary
    /// and the run continues from there, bit-identically.
    pub fn journal_path(&self, tag: &str) -> Option<PathBuf> {
        let dir = self.journal.as_ref()?;
        std::fs::create_dir_all(dir).expect("create journal directory");
        let path = dir.join(format!("{tag}.wal"));
        if !self.resume {
            let _ = std::fs::remove_file(&path);
        }
        Some(path)
    }

    /// Rebases `graph` onto the backing selected with `--graph-store`.
    /// `mem` materializes owned CSR arrays (the instance graph arrives
    /// mmap-backed from the k-NN cache, so this is a real copy, not a
    /// clone); `mmap` does a write → mmap round-trip through a temp
    /// store (the file is unlinked immediately; the live mapping keeps
    /// it readable).
    pub fn bench_graph(&self, graph: &SimilarityGraph, tag: &str) -> SimilarityGraph {
        match self.graph_store {
            GraphStoreMode::Mem => {
                let (offsets, neighbors, weights) = graph.csr_parts();
                SimilarityGraph::from_csr_parts(
                    offsets.to_vec(),
                    neighbors.to_vec(),
                    weights.to_vec(),
                )
                .expect("owned copy of a valid graph")
            }
            GraphStoreMode::Mmap => {
                let path = std::env::temp_dir()
                    .join(format!("submod-bench-{}-{tag}.csr", std::process::id()));
                graph.write_store(&path).expect("write graph store");
                let mapped = SimilarityGraph::open_store(&path).expect("open graph store");
                let _ = std::fs::remove_file(&path);
                mapped
            }
        }
    }
}

/// Deterministic per-cell seed so experiments are reproducible without
/// cells sharing RNG streams.
pub fn cell_seed(partitions: usize, rounds: usize, alpha: f64, k: usize) -> u64 {
    let mut z = partitions as u64
        ^ ((rounds as u64) << 16)
        ^ ((k as u64) << 32)
        ^ ((alpha * 1000.0) as u64) << 48;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// One heatmap cell: raw objective score.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    pub partitions: usize,
    pub rounds: usize,
    pub score: f64,
}

/// One normalization group (fixed dataset, α, k): the centralized
/// reference plus every sweep cell.
#[derive(Clone, Debug)]
pub struct HeatmapGroup {
    pub alpha: f64,
    pub subset_fraction: f64,
    pub k: usize,
    pub centralized: f64,
    pub cells: Vec<Cell>,
}

impl HeatmapGroup {
    /// Normalizes a raw score with the paper's §6 convention.
    pub fn normalizer(&self) -> ScoreNormalizer {
        let observed: Vec<f64> = self.cells.iter().map(|c| c.score).collect();
        ScoreNormalizer::new(self.centralized, &observed)
    }
}

/// Runs the partitions × rounds sweep of Figures 3/4/12–15 for one
/// instance.
pub fn run_heatmap(
    instance: &SelectionInstance,
    alphas: &[f64],
    subset_fractions: &[f64],
    axis: &[usize],
    adaptive: bool,
    gamma: f64,
) -> Vec<HeatmapGroup> {
    let ground: Vec<submod_core::NodeId> =
        (0..instance.len()).map(submod_core::NodeId::from_index).collect();
    let mut groups = Vec::new();
    for &alpha in alphas {
        let objective = instance.objective(alpha).expect("objective");
        for &frac in subset_fractions {
            let k = ((instance.len() as f64 * frac).round() as usize).max(1);
            let centralized = greedy_select(&instance.graph, &objective, k)
                .expect("centralized")
                .objective_value();
            let mut cells = Vec::new();
            for &partitions in axis {
                for &rounds in axis {
                    let score = run_cell(
                        instance, &objective, &ground, k, partitions, rounds, adaptive, gamma,
                    );
                    cells.push(Cell { partitions, rounds, score });
                }
            }
            groups.push(HeatmapGroup { alpha, subset_fraction: frac, k, centralized, cells });
        }
    }
    groups
}

/// One distributed-greedy sweep cell.
#[allow(clippy::too_many_arguments)]
pub fn run_cell(
    instance: &SelectionInstance,
    objective: &PairwiseObjective,
    ground: &[submod_core::NodeId],
    k: usize,
    partitions: usize,
    rounds: usize,
    adaptive: bool,
    gamma: f64,
) -> f64 {
    let config = DistGreedyConfig::new(partitions, rounds)
        .expect("config")
        .adaptive(adaptive)
        .schedule(DeltaSchedule::Linear { gamma })
        .seed(cell_seed(partitions, rounds, objective.alpha(), k));
    distributed_greedy(&instance.graph, objective, ground, k, &config)
        .expect("distributed greedy")
        .selection
        .objective_value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_seed_is_deterministic_and_distinguishing() {
        assert_eq!(cell_seed(4, 8, 0.9, 100), cell_seed(4, 8, 0.9, 100));
        assert_ne!(cell_seed(4, 8, 0.9, 100), cell_seed(8, 8, 0.9, 100));
        assert_ne!(cell_seed(4, 8, 0.9, 100), cell_seed(4, 16, 0.9, 100));
        assert_ne!(cell_seed(4, 8, 0.9, 100), cell_seed(4, 8, 0.5, 100));
        assert_ne!(cell_seed(4, 8, 0.9, 100), cell_seed(4, 8, 0.9, 500));
    }

    #[test]
    fn quick_mode_shrinks_grids() {
        let full = BenchCtx {
            out_dir: "r".into(),
            scale: 0.1,
            quick: false,
            report_memory: false,
            graph_store: GraphStoreMode::Mem,
            journal: None,
            resume: false,
        };
        let quick = BenchCtx {
            out_dir: "r".into(),
            scale: 0.1,
            quick: true,
            report_memory: false,
            graph_store: GraphStoreMode::Mem,
            journal: None,
            resume: false,
        };
        assert!(quick.grid_axis().len() < full.grid_axis().len());
        assert!(quick.alphas().len() < full.alphas().len());
        assert!(quick.subset_fractions().len() < full.subset_fractions().len());
    }

    #[test]
    fn heatmap_group_normalizer_anchors() {
        let group = HeatmapGroup {
            alpha: 0.9,
            subset_fraction: 0.1,
            k: 10,
            centralized: 100.0,
            cells: vec![
                Cell { partitions: 1, rounds: 1, score: 100.0 },
                Cell { partitions: 2, rounds: 1, score: 40.0 },
            ],
        };
        let norm = group.normalizer();
        assert_eq!(norm.normalize(100.0), 100.0);
        assert_eq!(norm.normalize(40.0), 0.0);
    }
}
