//! Figures 6–11 (Appendix E): ablation of the Δ interpolation factor γ —
//! difference heatmaps of γ ∈ {1.0, 0.5, 0.25} against the default 0.75.

use crate::common::{run_heatmap, BenchCtx, HeatmapGroup};
use crate::output::{write_artifact, Matrix};
use submod_data::SelectionInstance;

/// Runs the γ ablation on the CIFAR-like dataset (pass `--scale` to grow
/// it; the ImageNet variant runs when `quick` is off).
pub fn delta_ablation(ctx: &BenchCtx) {
    delta_for(ctx, &ctx.cifar(), "cifar");
    if !ctx.quick {
        delta_for(ctx, &ctx.imagenet(), "imagenet");
    }
}

fn delta_for(ctx: &BenchCtx, instance: &SelectionInstance, dataset: &str) {
    println!("figures 6–11 ({dataset}): Δ-schedule γ ablation (non-adaptive)");
    let axis = ctx.grid_axis();
    // The paper evaluates 10 % and 50 % subsets for the ablation.
    let fractions: Vec<f64> = ctx.subset_fractions().into_iter().filter(|&f| f < 0.8).collect();
    let alphas = ctx.alphas();

    let baseline = run_heatmap(instance, &alphas, &fractions, &axis, false, 0.75);
    let mut csv = String::from("dataset,gamma,alpha,subset,partitions,rounds,normalized_diff\n");
    for gamma in [1.0, 0.5, 0.25] {
        let variant = run_heatmap(instance, &alphas, &fractions, &axis, false, gamma);
        for (base_group, var_group) in baseline.iter().zip(&variant) {
            let matrix = diff_matrix(base_group, var_group, &axis, dataset, gamma);
            matrix.print();
            for (ri, &p) in axis.iter().enumerate() {
                for (ci, &r) in axis.iter().enumerate() {
                    csv.push_str(&format!(
                        "{dataset},{gamma},{},{},{p},{r},{:.2}\n",
                        base_group.alpha,
                        base_group.subset_fraction,
                        matrix.value(ri, ci)
                    ));
                }
            }
        }
    }
    let _ = write_artifact(&ctx.out_dir, &format!("fig6_11_delta_{dataset}.csv"), &csv);
}

/// Difference of normalized scores: positive = γ variant better than 0.75.
fn diff_matrix(
    base: &HeatmapGroup,
    variant: &HeatmapGroup,
    axis: &[usize],
    dataset: &str,
    gamma: f64,
) -> Matrix {
    // Both runs are normalized against the *baseline* group, matching the
    // paper's "difference of the normalized score to the base case".
    let normalizer = base.normalizer();
    let mut values = Vec::new();
    for &p in axis {
        for &r in axis {
            let b = base
                .cells
                .iter()
                .find(|c| c.partitions == p && c.rounds == r)
                .map(|c| normalizer.normalize(c.score))
                .unwrap_or(f64::NAN);
            let v = variant
                .cells
                .iter()
                .find(|c| c.partitions == p && c.rounds == r)
                .map(|c| normalizer.normalize(c.score))
                .unwrap_or(f64::NAN);
            values.push(v - b);
        }
    }
    Matrix {
        title: format!(
            "{dataset} γ = {gamma} vs 0.75: {:.0} % subset, α = {} (positive = better)",
            base.subset_fraction * 100.0,
            base.alpha
        ),
        row_label: "parts",
        col_label: "rounds",
        rows: axis.to_vec(),
        cols: axis.to_vec(),
        values,
    }
}
