//! Table 2 (bounding behaviour for α = 0.9) and Figures 16/17 (bounding +
//! distributed greedy heatmaps with adaptive partitioning).

use crate::common::{cell_seed, BenchCtx};
use crate::output::{print_table, write_artifact, Matrix};
use submod_core::{greedy_select, ScoreNormalizer};
use submod_data::SelectionInstance;
use submod_dist::{
    bound_in_memory, select_subset, BoundingConfig, DistGreedyConfig, PipelineConfig,
    SamplingStrategy,
};

/// The five bounding configurations of Table 2 / Figures 16–17.
pub fn bounding_variants(seed: u64) -> Vec<(&'static str, Option<BoundingConfig>)> {
    vec![
        ("regular", None),
        (
            "uniform-30%",
            Some(BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, seed).unwrap()),
        ),
        (
            "uniform-70%",
            Some(BoundingConfig::approximate(0.7, SamplingStrategy::Uniform, seed).unwrap()),
        ),
        (
            "weighted-30%",
            Some(BoundingConfig::approximate(0.3, SamplingStrategy::Weighted, seed).unwrap()),
        ),
        (
            "weighted-70%",
            Some(BoundingConfig::approximate(0.7, SamplingStrategy::Weighted, seed).unwrap()),
        ),
    ]
}

/// Table 2: bounding decisions, round counts, and completed scores.
pub fn table2(ctx: &BenchCtx) {
    println!("table 2: bounding results for α = 0.9");
    let mut csv = String::from(
        "dataset,sampling,subset,included,excluded,grow_rounds,shrink_rounds,score_pct\n",
    );
    for (dataset, instance) in [("cifar", ctx.cifar()), ("imagenet", ctx.imagenet())] {
        let objective = instance.objective(0.9).expect("objective");
        let mut rows = Vec::new();
        for &frac in &ctx.subset_fractions() {
            let k = ((instance.len() as f64 * frac).round() as usize).max(1);
            let centralized =
                greedy_select(&instance.graph, &objective, k).expect("greedy").objective_value();
            for (name, config) in bounding_variants(41) {
                let bounding = match &config {
                    None => BoundingConfig::exact(),
                    Some(c) => c.clone(),
                };
                let outcome =
                    bound_in_memory(&instance.graph, &objective, k, &bounding).expect("bounding");
                // Table 2 protocol: complete with centralized greedy
                // (1 partition / 1 round).
                let pipeline = PipelineConfig::with_bounding(
                    bounding,
                    DistGreedyConfig::new(1, 1).expect("config").seed(1),
                );
                let score = select_subset(&instance.graph, &objective, k, &pipeline)
                    .expect("completion")
                    .selection
                    .objective_value();
                let pct = score / centralized * 100.0;
                rows.push(vec![
                    name.to_string(),
                    format!("{:.0} %", frac * 100.0),
                    format!("{} / {}", outcome.included.len(), outcome.excluded_count),
                    format!("{} / {}", outcome.grow_rounds, outcome.shrink_rounds),
                    format!("{pct:.2} %"),
                ]);
                csv.push_str(&format!(
                    "{dataset},{name},{frac},{},{},{},{},{pct:.3}\n",
                    outcome.included.len(),
                    outcome.excluded_count,
                    outcome.grow_rounds,
                    outcome.shrink_rounds,
                ));
            }
        }
        print_table(
            &format!("{dataset}: bounding @ α = 0.9 (score vs centralized = 100 %)"),
            &["sampling", "subset", "incl/excl", "grow/shrink", "score"],
            &rows,
        );
    }
    let _ = write_artifact(&ctx.out_dir, "table2_bounding.csv", &csv);

    // The paper's §6.2 α observation: lower α ⇒ no decisions.
    let instance = ctx.cifar();
    for alpha in [0.5, 0.1] {
        let objective = instance.objective(alpha).expect("objective");
        let k = instance.len() / 10;
        let outcome = bound_in_memory(&instance.graph, &objective, k, &BoundingConfig::exact())
            .expect("bounding");
        println!(
            "α = {alpha}: exact bounding decided {} points (paper: none for α ∈ {{0.1, 0.5}})",
            outcome.included.len() + outcome.excluded_count
        );
    }
}

/// Figures 16/17: bounding variant × partitions × rounds heatmaps with
/// adaptive partitioning.
pub fn fig16_17(ctx: &BenchCtx) {
    for (dataset, instance, artifact) in [
        ("cifar", ctx.cifar(), "fig16_cifar_bounding_heatmap"),
        ("imagenet", ctx.imagenet(), "fig17_imagenet_bounding_heatmap"),
    ] {
        println!("figures 16/17 ({dataset}): bounding + adaptive distributed greedy");
        let axis = ctx.grid_axis();
        let objective = instance.objective(0.9).expect("objective");
        let mut csv = String::from("dataset,sampling,subset,partitions,rounds,score,normalized\n");
        for &frac in &ctx.subset_fractions() {
            let k = ((instance.len() as f64 * frac).round() as usize).max(1);
            let centralized =
                greedy_select(&instance.graph, &objective, k).expect("greedy").objective_value();
            // Gather all scores of the group first for normalization.
            let mut matrices = Vec::new();
            let mut all_scores = Vec::new();
            for (name, config) in bounding_variants(41) {
                // Bounding is independent of the greedy sweep: run it once
                // per variant and complete every grid cell from it.
                let outcome = config
                    .as_ref()
                    .map(|c| bound_in_memory(&instance.graph, &objective, k, c).expect("bounding"));
                let mut values = Vec::new();
                for &p in &axis {
                    for &r in &axis {
                        let greedy = DistGreedyConfig::new(p, r)
                            .expect("config")
                            .adaptive(true)
                            .seed(cell_seed(p, r, 0.9, k));
                        let score = submod_dist::complete_selection(
                            &instance.graph,
                            &objective,
                            k,
                            outcome.clone(),
                            &greedy,
                            cell_seed(p, r, 0.9, k),
                        )
                        .expect("pipeline")
                        .selection
                        .objective_value();
                        values.push(score);
                        all_scores.push(score);
                    }
                }
                matrices.push((name, values));
            }
            let normalizer = ScoreNormalizer::new(centralized, &all_scores);
            for (name, values) in matrices {
                let matrix = Matrix {
                    title: format!(
                        "{dataset} {:.0} % subset, {} (adaptive, 100 = centralized)",
                        frac * 100.0,
                        name
                    ),
                    row_label: "parts",
                    col_label: "rounds",
                    rows: axis.clone(),
                    cols: axis.clone(),
                    values: values.iter().map(|&s| normalizer.normalize(s)).collect(),
                };
                matrix.print();
                for (idx, &score) in values.iter().enumerate() {
                    let p = axis[idx / axis.len()];
                    let r = axis[idx % axis.len()];
                    csv.push_str(&format!(
                        "{dataset},{name},{frac},{p},{r},{score:.4},{:.2}\n",
                        normalizer.normalize(score)
                    ));
                }
            }
        }
        let _ = write_artifact(&ctx.out_dir, &format!("{artifact}.csv"), &csv);
    }
}

/// Extension: Theorem 4.6 guarantees against empirical quality.
pub fn theory(ctx: &BenchCtx) {
    println!("theorem 4.6: guarantee vs empirical approximate-bounding quality");
    let instance: SelectionInstance = ctx.cifar();
    let raw_objective = instance.objective(0.9).expect("objective");
    // On centered utilities some U_min hit 0 and γ is infinite (the
    // paper's "vacuous bound" regime); the Appendix A offset restores a
    // finite γ, so report the guarantee on the offset objective.
    let delta = raw_objective.monotonicity_offset(&instance.graph) + 1e-3;
    let objective = raw_objective.with_utility_offset(delta).expect("offset objective");
    println!("appendix A offset δ = {delta:.4} applied so that γ is finite (raw instance: γ = ∞)");
    let k = instance.len() / 10;
    let centralized =
        greedy_select(&instance.graph, &objective, k).expect("greedy").objective_value();
    let mut rows = Vec::new();
    let mut csv = String::from("p,gamma,guaranteed_factor,success_probability,empirical_pct\n");
    for p in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
        let guarantee = submod_dist::theorem_4_6(&instance.graph, &objective, p).expect("theorem");
        let bounding =
            BoundingConfig::approximate(p, SamplingStrategy::Uniform, 11).expect("config");
        let pipeline = PipelineConfig::with_bounding(
            bounding,
            DistGreedyConfig::new(1, 1).expect("config").seed(1),
        );
        let score = select_subset(&instance.graph, &objective, k, &pipeline)
            .expect("pipeline")
            .selection
            .objective_value();
        let pct = score / centralized * 100.0;
        rows.push(vec![
            format!("{p:.1}"),
            if guarantee.gamma.is_finite() {
                format!("{:.2}", guarantee.gamma)
            } else {
                "inf".into()
            },
            format!("{:.4}", guarantee.approximation_factor),
            format!("{:.3}", guarantee.success_probability),
            format!("{pct:.2} %"),
        ]);
        csv.push_str(&format!(
            "{p},{},{:.6},{:.6},{pct:.3}\n",
            guarantee.gamma, guarantee.approximation_factor, guarantee.success_probability
        ));
    }
    print_table(
        "Theorem 4.6 on the CIFAR-like instance (empirical = bounding+centralized vs centralized)",
        &["p", "gamma", "factor", "probability", "empirical"],
        &rows,
    );
    let _ = write_artifact(&ctx.out_dir, "theory_theorem46.csv", &csv);
}
