//! Experiment harness reproducing every table and figure of the paper.
//!
//! ```text
//! cargo run -p submod-bench --release --bin experiments -- <experiment> [options]
//!
//! experiments:
//!   fig1      bounding walkthrough (Figure 1)
//!   fig2      distributed-greedy walkthrough (Figure 2)
//!   fig3      CIFAR heatmaps, non-adaptive (Figures 3 & 12)
//!   fig13     ImageNet heatmaps, non-adaptive (Figure 13)
//!   fig4      CIFAR heatmaps, adaptive (Figures 4 & 14)
//!   fig15     ImageNet heatmaps, adaptive (Figure 15)
//!   fig5      subset visualization (Figure 5)
//!   delta     Δ-schedule γ ablation (Figures 6–11)
//!   table2    bounding results (Table 2)
//!   table3    worst-case partitioning (Table 3)
//!   table4    perturbed-dataset runtimes (Table 4)
//!   sec63     13 B-point scalability analogue (§6.3)
//!   fig16     bounding + greedy heatmaps (Figures 16 & 17)
//!   baselines GreeDi / RandGreeDi memory-vs-quality comparison
//!   theory    Theorem 4.6 guarantee vs empirical quality
//!   ltm       larger-than-memory budget sweep (outcome invariance)
//!   profile   traced end-to-end pass (forces SUBMOD_TRACE=full, writes
//!             profile_trace.json + the phase-breakdown markdown;
//!             --scale 1.0 regenerates scale1_profile.md)
//!   all       everything above
//!
//! options:
//!   --scale F    dataset scale factor (default 0.1; 1.0 = paper sizes)
//!   --out DIR    artifact directory (default results/)
//!   --quick      coarse grids for smoke runs
//!   --threads N  worker threads for the submod_exec pool (default:
//!                EXEC_NUM_THREADS or the available cores; results are
//!                identical at any value — only wall-clock changes)
//!   --report-memory
//!                print peak driver-side bytes for the bounding and
//!                multi-round greedy drivers (in-memory tables/queues vs
//!                engine-resident candidates/winner rows), turning the
//!                §5 larger-than-memory claim into a number
//!   --graph-store mem|mmap
//!                graph backing (default mem). `mmap` writes each
//!                experiment graph to the on-disk CSR store once and
//!                reopens it read-only memory-mapped: adjacency costs
//!                zero driver heap, selections are bitwise-identical,
//!                and `ltm` reports graph bytes vs the measured peak
//!                RSS growth of the selection phase
//!   --fusion on|off
//!                dataflow operator fusion (default on, same as
//!                SUBMOD_FUSION). `off` runs every deferrable stage
//!                eagerly — results are bitwise-identical, only the
//!                per-stage materialization cost changes
//!   --journal DIR
//!                run the journaled selections of `ltm` and `table4`
//!                with a write-ahead journal per selection under DIR:
//!                every round boundary is fsynced, and the journaled
//!                result is asserted bit-identical to the plain one.
//!                Journal and fault counters land in the printed
//!                summary and the metrics export
//!   --resume     replay existing journals under `--journal DIR` to
//!                their last complete round boundary and continue from
//!                there (after a crash — or a SUBMOD_FAULTS=crash-round-N
//!                injection — rerunning with --resume completes the run
//!                without redoing finished rounds)
//!
//! With `SUBMOD_TRACE=spans` or `=full` (see the README's
//! Observability section) every experiment exports a chrome-trace to
//! `OUT/trace.json` and the metrics registry to `OUT/metrics.json` on
//! exit.
//! ```

mod common;
mod exp_baseline;
mod exp_bounding;
mod exp_delta;
mod exp_heatmaps;
mod exp_ltm;
mod exp_profile;
mod exp_runtime;
mod exp_visual;
mod exp_walkthrough;
mod exp_worstcase;
mod output;

use common::{BenchCtx, GraphStoreMode};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    let experiment = args[0].clone();
    let mut ctx = BenchCtx {
        out_dir: PathBuf::from("results"),
        scale: 0.1,
        quick: false,
        report_memory: false,
        graph_store: GraphStoreMode::Mem,
        journal: None,
        resume: false,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                ctx.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale expects a number"));
            }
            "--out" => {
                i += 1;
                ctx.out_dir =
                    PathBuf::from(args.get(i).unwrap_or_else(|| die("--out expects a path")));
            }
            "--quick" => ctx.quick = true,
            "--report-memory" => ctx.report_memory = true,
            "--graph-store" => {
                i += 1;
                ctx.graph_store = match args.get(i).map(String::as_str) {
                    Some("mem") => GraphStoreMode::Mem,
                    Some("mmap") => GraphStoreMode::Mmap,
                    _ => die("--graph-store expects `mem` or `mmap`"),
                };
            }
            "--fusion" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("on") => submod_dataflow::set_fusion_default(true),
                    Some("off") => submod_dataflow::set_fusion_default(false),
                    _ => die("--fusion expects `on` or `off`"),
                };
            }
            "--journal" => {
                i += 1;
                ctx.journal = Some(PathBuf::from(
                    args.get(i).unwrap_or_else(|| die("--journal expects a directory")),
                ));
            }
            "--resume" => ctx.resume = true,
            "--threads" => {
                i += 1;
                let threads: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--threads expects a positive integer"));
                submod_exec::set_num_threads(threads);
            }
            other => die(&format!("unknown option `{other}`")),
        }
        i += 1;
    }
    if ctx.resume && ctx.journal.is_none() {
        die("--resume requires --journal DIR");
    }

    let start = Instant::now();
    run(&experiment, &ctx);
    println!("\ntotal experiment time: {:.1?}", start.elapsed());

    // `profile` exports (and drains) its own trace; every other
    // experiment gets an end-of-run export when tracing is on, so
    // `SUBMOD_TRACE=full experiments ltm` drops a Perfetto-loadable
    // trace next to its CSV artifacts.
    if experiment != "profile" && submod_obs::mode() != submod_obs::TraceMode::Off {
        let _ = std::fs::create_dir_all(&ctx.out_dir);
        let trace_path = ctx.out_dir.join("trace.json");
        match submod_obs::write_chrome_trace(&trace_path) {
            Ok(events) => println!(
                "wrote {} ({} spans; load in Perfetto or chrome://tracing)",
                trace_path.display(),
                events.len()
            ),
            Err(e) => eprintln!("trace export failed: {e}"),
        }
        let metrics_path = ctx.out_dir.join("metrics.json");
        let snap = submod_obs::snapshot();
        if std::fs::write(&metrics_path, submod_obs::metrics_json(&snap)).is_ok() {
            println!("wrote {}", metrics_path.display());
        }
    }
}

fn run(experiment: &str, ctx: &BenchCtx) {
    match experiment {
        "fig1" => exp_walkthrough::fig1(ctx),
        "fig2" => exp_walkthrough::fig2(ctx),
        "fig3" | "fig12" => exp_heatmaps::fig3(ctx),
        "fig13" => exp_heatmaps::fig13(ctx),
        "fig4" | "fig14" => exp_heatmaps::fig4(ctx),
        "fig15" => exp_heatmaps::fig15(ctx),
        "fig5" => exp_visual::fig5(ctx),
        "delta" | "fig6" | "fig7" | "fig8" | "fig9" | "fig10" | "fig11" => {
            exp_delta::delta_ablation(ctx)
        }
        "table2" => exp_bounding::table2(ctx),
        "table3" => exp_worstcase::table3(ctx),
        "table4" => exp_runtime::table4(ctx),
        "sec63" => exp_runtime::sec63(ctx),
        "fig16" | "fig17" => exp_bounding::fig16_17(ctx),
        "baselines" | "table1" => exp_baseline::baselines(ctx),
        "theory" => exp_bounding::theory(ctx),
        "ltm" => exp_ltm::ltm(ctx),
        "profile" => exp_profile::profile(ctx),
        "all" => {
            for exp in [
                "fig1",
                "fig2",
                "fig3",
                "fig13",
                "fig4",
                "fig15",
                "fig5",
                "delta",
                "table2",
                "table3",
                "table4",
                "sec63",
                "fig16",
                "baselines",
                "theory",
                "ltm",
            ] {
                println!("\n================ {exp} ================");
                run(exp, ctx);
            }
        }
        other => die(&format!("unknown experiment `{other}`")),
    }
}

fn print_usage() {
    println!(
        "usage: experiments <fig1|fig2|fig3|fig4|fig5|fig13|fig15|fig16|delta|table2|table3|table4|sec63|baselines|theory|ltm|profile|all> \
         [--scale F] [--out DIR] [--quick] [--threads N] [--report-memory] \
         [--graph-store mem|mmap] [--fusion on|off] [--journal DIR] [--resume]"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
