//! The larger-than-memory demonstration: run the §5 dataflow bounding
//! and the engine-resident multi-round greedy under progressively
//! tighter per-worker memory budgets and show that (a) the outcome never
//! changes and (b) the engine trades memory for spill I/O exactly as a
//! Beam runner would.
//!
//! Every memory figure here — driver bytes per pass/round, broadcast
//! volume, steady-state RSS growth — is read back from the
//! `submod_obs` metrics registry (`submod_obs::reset_metrics` before
//! each measured run, `submod_obs::snapshot` after), so the printed
//! tables are the same numbers any trace consumer sees.
//!
//! With `--graph-store mmap` the adjacency itself moves out of driver
//! heap too: the graph is written to the on-disk CSR store once,
//! reopened read-only memory-mapped, and the experiment reports the
//! graph's bytes against the measured peak RSS growth of one
//! steady-state selection pass (the budget sweeps double as warmup, so
//! one-time thread/allocator costs are excluded). Open-time validation
//! pages the whole file sequentially, so the RSS baseline — marked
//! after the store is opened — charges none of the adjacency to the
//! selections.

use crate::common::{BenchCtx, GraphStoreMode};
use crate::output::{print_table, write_artifact};
use std::time::Instant;
use submod_core::{NodeId, SimilarityGraph};
use submod_dataflow::{MemoryBudget, Pipeline};
use submod_dist::{
    bound_dataflow, bound_in_memory, distributed_greedy, distributed_greedy_dataflow,
    select_subset, select_subset_journaled, BoundingConfig, DistGreedyConfig, PipelineConfig,
    SamplingStrategy,
};
use submod_obs::MetricsSnapshot;

/// Reads a gauge out of a registry snapshot (0 when never set).
fn gauge(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.gauges.get(name).copied().unwrap_or(0)
}

/// Reads a counter out of a registry snapshot (0 when never touched).
fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counters.get(name).copied().unwrap_or(0)
}

/// Runs the budget sweep on the CIFAR-like dataset.
pub fn ltm(ctx: &BenchCtx) {
    let instance = ctx.cifar();
    let graph = ctx.bench_graph(&instance.graph, "ltm");
    match ctx.graph_store {
        GraphStoreMode::Mem => println!(
            "graph store: mem ({} KiB owned adjacency on the driver heap)",
            graph.memory_bytes() / 1024
        ),
        GraphStoreMode::Mmap => println!(
            "graph store: mmap ({} KiB file, {} B adjacency on the driver heap)",
            graph.store_file_bytes().expect("mapped graph has a file") / 1024,
            graph.heap_bytes()
        ),
    }

    // The budget sweeps double as warmup: they pre-create worker
    // threads, allocator arenas, and spill buffers, so the metered
    // region below charges only the *selections* — not one-time
    // process-runtime costs — against the graph's size.
    bounding_sweep(ctx, &instance, &graph);
    greedy_sweep(ctx, &instance, &graph);
    if ctx.journal.is_some() {
        journaled_selection(ctx, &instance, &graph);
    }

    let baseline_kib = submod_obs::mark_rss_baseline();
    steady_state_pass(&instance, &graph);
    let snap = submod_obs::snapshot();
    let delta_kib =
        baseline_kib.map(|base| gauge(&snap, "process.rss_peak_kib").saturating_sub(base));

    let graph_kib = (graph.memory_bytes() / 1024) as u64;
    let delta_label = delta_kib.map_or_else(|| "n/a".to_string(), |d| format!("{d} KiB"));
    println!(
        "\ngraph bytes {} KiB vs steady-state selection-pass peak RSS growth {} \
         (graph heap: {} B)",
        graph_kib,
        delta_label,
        graph.heap_bytes()
    );
    if let (GraphStoreMode::Mmap, Some(delta)) = (ctx.graph_store, delta_kib) {
        assert!(
            graph_kib > delta,
            "mapped adjacency should dwarf a steady-state selection pass's RSS growth \
             (graph {graph_kib} KiB, growth {delta} KiB)"
        );
    }
    let store = match ctx.graph_store {
        GraphStoreMode::Mem => "mem",
        GraphStoreMode::Mmap => "mmap",
    };
    let _ = write_artifact(
        &ctx.out_dir,
        "ltm_graph_store.csv",
        &format!(
            "store,graph_kib,graph_heap_bytes,steady_state_rss_growth_kib\n{store},{graph_kib},{},{}\n",
            graph.heap_bytes(),
            delta_kib.map_or_else(|| "n/a".to_string(), |d| d.to_string()),
        ),
    );
}

/// The crash-safety demonstration (`--journal DIR [--resume]`): the
/// full bounding→greedy pipeline runs with a write-ahead journal, every
/// round boundary fsynced. The journaled selection must be bit-identical
/// to the plain one, and the journal/fault counters — records written,
/// records replayed on a resume, torn bytes truncated, transient-fault
/// retries — land in the printed table, the CSV artifact, and (via the
/// registry) the end-of-run metrics export.
fn journaled_selection(
    ctx: &BenchCtx,
    instance: &submod_data::SelectionInstance,
    graph: &SimilarityGraph,
) {
    let Some(path) = ctx.journal_path("ltm_pipeline") else { return };
    println!(
        "\njournaled pipeline selection (WAL at {}{})",
        path.display(),
        if ctx.resume { ", resuming" } else { "" }
    );
    let objective = instance.objective(0.9).expect("objective");
    let k = instance.len() / 10;
    let config = PipelineConfig::with_bounding(
        BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 17).expect("config"),
        DistGreedyConfig::new(8, 4).expect("config").seed(17).adaptive(true),
    );
    submod_obs::reset_metrics();
    let start = Instant::now();
    let outcome =
        select_subset_journaled(graph, &objective, k, &config, &path).expect("journaled pipeline");
    let secs = start.elapsed().as_secs_f64();
    let snap = submod_obs::snapshot();

    let plain = select_subset(graph, &objective, k, &config).expect("plain pipeline");
    assert!(
        outcome.selection.selected() == plain.selection.selected()
            && outcome.selection.objective_value().to_bits()
                == plain.selection.objective_value().to_bits(),
        "the journaled selection diverged from the plain one"
    );
    println!("journaled selection is bit-identical to the unjournaled run");

    let written = counter(&snap, "journal.records_written");
    let replayed = counter(&snap, "journal.records_replayed");
    let torn = counter(&snap, "journal.torn_bytes");
    let syncs = counter(&snap, "journal.syncs");
    let retries = counter(&snap, "faults.retries");
    let injected = counter(&snap, "faults.injected");
    print_table(
        "write-ahead journal (counters also land in metrics.json)",
        &["wall clock", "records written", "replayed", "torn bytes", "fsyncs", "faults", "retries"],
        &[vec![
            format!("{secs:.2} s"),
            written.to_string(),
            replayed.to_string(),
            torn.to_string(),
            syncs.to_string(),
            injected.to_string(),
            retries.to_string(),
        ]],
    );
    let _ = write_artifact(
        &ctx.out_dir,
        "ltm_journal.csv",
        &format!(
            "resumed,seconds,records_written,records_replayed,torn_bytes,syncs,faults_injected,faults_retries\n\
             {},{secs:.4},{written},{replayed},{torn},{syncs},{injected},{retries}\n",
            ctx.resume,
        ),
    );
}

/// One more full selection of each kind against a warm process: the
/// RSS growth this adds (tracked by the `process.rss_peak_kib` gauge
/// relative to the marked baseline) is what the selections themselves
/// cost in driver memory, graph backing included.
fn steady_state_pass(instance: &submod_data::SelectionInstance, graph: &SimilarityGraph) {
    let objective = instance.objective(0.9).expect("objective");
    let n = instance.len();
    let k = n / 10;
    let config = BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 17).expect("config");
    let pipeline = Pipeline::new(8).expect("pipeline");
    bound_dataflow(&pipeline, graph, &objective, k, &config).expect("steady-state bounding");
    submod_obs::sample_rss();
    let ground: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    let greedy = DistGreedyConfig::new(8, 4).expect("config").seed(17).adaptive(true);
    distributed_greedy_dataflow(&pipeline, graph, &objective, &ground, k, &greedy)
        .expect("steady-state greedy");
    submod_obs::sample_rss();
}

/// The bounding half of the sweep.
fn bounding_sweep(
    ctx: &BenchCtx,
    instance: &submod_data::SelectionInstance,
    graph: &SimilarityGraph,
) {
    println!("larger-than-memory: dataflow bounding under shrinking worker budgets");
    let objective = instance.objective(0.9).expect("objective");
    let k = instance.len() / 10;
    let config = BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 17).expect("config");

    submod_obs::reset_metrics();
    let reference = bound_in_memory(graph, &objective, k, &config).expect("reference bounding");
    let reference_snap = submod_obs::snapshot();
    println!(
        "reference (unbounded memory): included {}, excluded {}",
        reference.included.len(),
        reference.excluded_count
    );

    let mut rows = Vec::new();
    let mut memory_rows = Vec::new();
    let mut csv =
        String::from("budget_kib,identical,seconds,spill_files,bytes_spilled,peak_worker_kib\n");
    for budget_kib in [u64::MAX, 4096, 512, 64, 16] {
        let budget = if budget_kib == u64::MAX {
            MemoryBudget::unlimited()
        } else {
            MemoryBudget::bytes(budget_kib * 1024)
        };
        let pipeline =
            Pipeline::builder().workers(8).memory_budget(budget).build().expect("pipeline");
        submod_obs::reset_metrics();
        let start = Instant::now();
        let outcome =
            bound_dataflow(&pipeline, graph, &objective, k, &config).expect("dataflow bounding");
        let secs = start.elapsed().as_secs_f64();
        let snap = submod_obs::snapshot();
        let identical = outcome == reference;
        let metrics = pipeline.metrics();
        let label = if budget_kib == u64::MAX {
            "unlimited".to_string()
        } else {
            format!("{budget_kib} KiB")
        };
        rows.push(vec![
            label.clone(),
            if identical { "yes".into() } else { "NO".into() },
            format!("{secs:.2} s"),
            metrics.spill_files.to_string(),
            format!("{} KiB", metrics.bytes_spilled / 1024),
            format!("{} KiB", metrics.peak_worker_bytes / 1024),
        ]);
        csv.push_str(&format!(
            "{budget_kib},{identical},{secs:.4},{},{},{}\n",
            metrics.spill_files,
            metrics.bytes_spilled,
            metrics.peak_worker_bytes / 1024
        ));
        if ctx.report_memory {
            // Two status bitsets ride to the workers every pass.
            let per_pass = counter(&snap, "dataflow.broadcast.bytes")
                / counter(&snap, "bounding.passes").max(1);
            memory_rows.push(vec![
                label,
                format!("{} B", gauge(&snap, "bounding.peak_pass_bytes")),
                gauge(&snap, "bounding.peak_candidates").to_string(),
                format!("{} B", gauge(&snap, "bounding.peak_state_bytes")),
                format!("{per_pass} B"),
            ]);
        }
        assert!(identical, "memory budget changed the bounding outcome");
    }
    print_table(
        "identical outcomes at every budget (8 workers, 30 % uniform bounding, 10 % subset)",
        &["budget/worker", "identical", "wall clock", "spill files", "spilled", "peak worker"],
        &rows,
    );
    if ctx.report_memory {
        println!(
            "\nreference in-memory driver: peak pass bytes {} (full bound table), \
             peak state bytes {}",
            gauge(&reference_snap, "bounding.peak_pass_bytes"),
            gauge(&reference_snap, "bounding.peak_state_bytes")
        );
        print_table(
            "engine-resident driver memory: per-pass collections are candidates only",
            &["budget/worker", "peak pass", "peak candidates", "driver state", "broadcast/pass"],
            &memory_rows,
        );
    }
    let _ = write_artifact(&ctx.out_dir, "ltm_budget_sweep.csv", &csv);
}

/// The greedy half of the sweep: the engine-resident multi-round driver
/// under shrinking budgets, identical to the in-memory reference at
/// every budget, with the `greedy.*` registry gauges proving the driver
/// only ever collected winner rows.
fn greedy_sweep(
    ctx: &BenchCtx,
    instance: &submod_data::SelectionInstance,
    graph: &SimilarityGraph,
) {
    println!("\nlarger-than-memory: engine-resident multi-round greedy under shrinking budgets");
    let objective = instance.objective(0.9).expect("objective");
    let n = instance.len();
    let k = n / 10;
    let ground: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    let config = DistGreedyConfig::new(8, 4).expect("config").seed(17).adaptive(true);

    submod_obs::reset_metrics();
    let reference =
        distributed_greedy(graph, &objective, &ground, k, &config).expect("reference greedy");
    let reference_snap = submod_obs::snapshot();

    let mut rows = Vec::new();
    let mut memory_rows = Vec::new();
    let mut csv = String::from("budget_kib,identical,seconds,spill_files,bytes_spilled\n");
    for budget_kib in [u64::MAX, 512, 64, 8] {
        let budget = if budget_kib == u64::MAX {
            MemoryBudget::unlimited()
        } else {
            MemoryBudget::bytes(budget_kib * 1024)
        };
        let pipeline =
            Pipeline::builder().workers(8).memory_budget(budget).build().expect("pipeline");
        submod_obs::reset_metrics();
        let start = Instant::now();
        let report = distributed_greedy_dataflow(&pipeline, graph, &objective, &ground, k, &config)
            .expect("dataflow greedy");
        let secs = start.elapsed().as_secs_f64();
        let snap = submod_obs::snapshot();
        let identical = report.selection.selected() == reference.selection.selected()
            && report.selection.objective_value().to_bits()
                == reference.selection.objective_value().to_bits();
        let metrics = pipeline.metrics();
        let label = if budget_kib == u64::MAX {
            "unlimited".to_string()
        } else {
            format!("{budget_kib} KiB")
        };
        rows.push(vec![
            label.clone(),
            if identical { "yes".into() } else { "NO".into() },
            format!("{secs:.2} s"),
            metrics.spill_files.to_string(),
            format!("{} KiB", metrics.bytes_spilled / 1024),
        ]);
        csv.push_str(&format!(
            "{budget_kib},{identical},{secs:.4},{},{}\n",
            metrics.spill_files, metrics.bytes_spilled
        ));
        if ctx.report_memory {
            memory_rows.push(vec![
                label,
                format!("{} B", gauge(&snap, "greedy.peak_round_bytes")),
                counter(&snap, "greedy.winners_collected").to_string(),
                format!("{} B", gauge(&snap, "greedy.peak_state_bytes")),
                format!("{} B", gauge(&snap, "greedy.bytes_broadcast")),
            ]);
        }
        assert!(identical, "memory budget changed the greedy selection");
    }
    print_table(
        "identical selections at every budget (8 workers, 8 machines × 4 rounds, 10 % subset)",
        &["budget/worker", "identical", "wall clock", "spill files", "spilled"],
        &rows,
    );
    if ctx.report_memory {
        println!(
            "\nreference in-memory driver: peak round bytes {} (keyed pool + queues), \
             peak state bytes {}",
            gauge(&reference_snap, "greedy.peak_round_bytes"),
            gauge(&reference_snap, "greedy.peak_state_bytes")
        );
        print_table(
            "engine-resident greedy driver memory: per-round collections are winner rows only",
            &["budget/worker", "peak round", "winners", "driver state", "broadcast"],
            &memory_rows,
        );
    }
    let _ = write_artifact(&ctx.out_dir, "ltm_greedy_budget_sweep.csv", &csv);
}
