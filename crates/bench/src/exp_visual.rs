//! Figure 5: rasterized visualization of the chosen subset under 1 / 4 /
//! 16 partitions (PCA substitutes for t-SNE; see DESIGN.md).

use crate::common::BenchCtx;
use crate::output::{print_table, write_artifact};
use submod_core::NodeId;
use submod_data::{pca_2d, rasterize};
use submod_dist::{distributed_greedy, DistGreedyConfig};

/// Runs the Figure 5 reproduction on the CIFAR-like dataset.
pub fn fig5(ctx: &BenchCtx) {
    println!("figure 5: subset spread vs partition count (10 % subset, α = 0.9)");
    let instance = ctx.cifar();
    let objective = instance.objective(0.9).expect("objective");
    let k = instance.len() / 10;
    let ground: Vec<NodeId> = (0..instance.len()).map(NodeId::from_index).collect();

    let projected = pca_2d(&instance.embeddings).expect("pca");
    let grid_size = 48usize;

    let mut rows = Vec::new();
    let mut coverages = Vec::new();
    for partitions in [1usize, 4, 16] {
        let config = DistGreedyConfig::new(partitions, 1).expect("config").seed(5);
        let report = distributed_greedy(&instance.graph, &objective, &ground, k, &config)
            .expect("distributed");
        let mut mask = vec![false; instance.len()];
        for v in report.selection.selected() {
            mask[v.index()] = true;
        }
        let grid = rasterize(&projected, &mask, grid_size, grid_size).expect("rasterize");
        let coverage = grid.selected_cell_coverage();
        coverages.push(coverage);
        rows.push(vec![
            partitions.to_string(),
            format!("{:.2}", report.selection.objective_value()),
            format!("{:.1} %", coverage * 100.0),
        ]);
        let _ = write_artifact(
            &ctx.out_dir,
            &format!("fig5_raster_{partitions}partitions.csv"),
            &grid.to_csv(),
        );
    }
    print_table(
        "selected-cell coverage of the occupied 2-D plane (higher = more even spread)",
        &["partitions", "objective", "coverage"],
        &rows,
    );
    println!(
        "shape check: centralized spreads at least as widely as 16 partitions: {}",
        if coverages[0] >= coverages[2] { "yes (matches Figure 5)" } else { "no" }
    );
}
