//! Compares two Criterion JSON-lines baseline files (the
//! `CRITERION_OUTPUT_JSON` format: one `{"group":…,"id":…,"mean_ns":…}`
//! object per line) and fails loudly on mean-time regressions.
//!
//! ```text
//! cargo run -p submod-bench --bin bench-diff -- BASELINE CURRENT [--tolerance 0.20]
//! ```
//!
//! Exit status 1 when any benchmark present in both files got slower by
//! more than the tolerance (default +20 %). Entries that exist in only
//! one file are listed but never fail the diff (benches come and go
//! across PRs).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed baseline entry, keyed by `group/id`.
#[derive(Clone, Debug, PartialEq)]
struct Entry {
    mean_ns: f64,
}

/// Pulls the string value of `"key":"…"` out of a flat JSON object line,
/// honoring the `\"` / `\\` escapes criterion's JSON writer emits.
fn json_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
}

/// Pulls the numeric value of `"key":N` out of a flat JSON object line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn parse_baselines(content: &str) -> BTreeMap<String, Entry> {
    let mut out = BTreeMap::new();
    for line in content.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (Some(group), Some(id), Some(mean_ns)) =
            (json_str(line, "group"), json_str(line, "id"), json_num(line, "mean_ns"))
        else {
            eprintln!("warning: skipping unparsable baseline line: {line}");
            continue;
        };
        // Last write wins: CRITERION_OUTPUT_JSON appends, so a re-run
        // file legitimately contains repeated keys.
        out.insert(format!("{group}/{id}"), Entry { mean_ns });
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut tolerance = 0.20f64;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--tolerance" {
            i += 1;
            tolerance = match args.get(i).and_then(|s| s.parse().ok()) {
                Some(t) => t,
                None => {
                    eprintln!("error: --tolerance expects a number");
                    return ExitCode::from(2);
                }
            };
        } else {
            positional.push(args[i].clone());
        }
        i += 1;
    }
    if positional.len() != 2 {
        eprintln!("usage: bench-diff BASELINE CURRENT [--tolerance 0.20]");
        return ExitCode::from(2);
    }

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = parse_baselines(&read(&positional[0]));
    let current = parse_baselines(&read(&positional[1]));

    let mut regressions = Vec::new();
    println!(
        "{:<45} {:>12} {:>12} {:>9}  verdict (tolerance +{:.0} %)",
        "benchmark",
        "baseline ns",
        "current ns",
        "ratio",
        tolerance * 100.0
    );
    for (key, base) in &baseline {
        let Some(cur) = current.get(key) else {
            println!("{key:<45} {:>12.0} {:>12} {:>9}  removed", base.mean_ns, "-", "-");
            continue;
        };
        let ratio = cur.mean_ns / base.mean_ns;
        let verdict = if ratio > 1.0 + tolerance {
            regressions.push((key.clone(), ratio));
            "REGRESSION"
        } else if ratio < 1.0 - tolerance {
            "improved"
        } else {
            "ok"
        };
        println!("{key:<45} {:>12.0} {:>12.0} {ratio:>8.2}x  {verdict}", base.mean_ns, cur.mean_ns);
    }
    for key in current.keys().filter(|k| !baseline.contains_key(*k)) {
        println!("{key:<45} {:>12} {:>12.0} {:>9}  new", "-", current[key].mean_ns, "-");
    }

    if regressions.is_empty() {
        println!("\nno regressions beyond +{:.0} %", tolerance * 100.0);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nFAILED: {} benchmark(s) regressed beyond +{:.0} %:",
            regressions.len(),
            tolerance * 100.0
        );
        for (key, ratio) in &regressions {
            eprintln!("  {key}: {ratio:.2}x the baseline mean");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINES: &str = r#"
{"group":"g","id":"fast","mean_ns":1000,"min_ns":900,"max_ns":1100,"samples":10}
{"group":"g","id":"slow","mean_ns":5000,"min_ns":4000,"max_ns":6000,"samples":10}
"#;

    #[test]
    fn parses_json_lines() {
        let map = parse_baselines(LINES);
        assert_eq!(map.len(), 2);
        assert_eq!(map["g/fast"].mean_ns, 1000.0);
        assert_eq!(map["g/slow"].mean_ns, 5000.0);
    }

    #[test]
    fn last_write_wins_on_repeated_keys() {
        let twice = format!(
            "{LINES}\n{}",
            r#"{"group":"g","id":"fast","mean_ns":1500,"min_ns":1,"max_ns":2,"samples":10}"#
        );
        assert_eq!(parse_baselines(&twice)["g/fast"].mean_ns, 1500.0);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let map = parse_baselines("not json\n{\"group\":\"g\"}\n");
        assert!(map.is_empty());
    }

    #[test]
    fn field_extractors() {
        let line = r#"{"group":"a_b","id":"x","mean_ns":12345.5,"samples":3}"#;
        assert_eq!(json_str(line, "group").as_deref(), Some("a_b"));
        assert_eq!(json_str(line, "id").as_deref(), Some("x"));
        assert_eq!(json_num(line, "mean_ns"), Some(12345.5));
        assert_eq!(json_num(line, "samples"), Some(3.0));
        assert_eq!(json_num(line, "missing"), None);
    }

    /// Keys with the escapes criterion's `json_escape` writes must parse
    /// back to the original text, not truncate at the first quote.
    #[test]
    fn escaped_keys_roundtrip() {
        let line = r#"{"group":"g \"q\" \\ tail","id":"x","mean_ns":10,"samples":1}"#;
        assert_eq!(json_str(line, "group").as_deref(), Some(r#"g "q" \ tail"#));
        let map = parse_baselines(line);
        assert_eq!(map[r#"g "q" \ tail/x"#].mean_ns, 10.0);
    }
}
