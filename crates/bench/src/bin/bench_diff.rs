//! Compares two Criterion JSON-lines baseline files (the
//! `CRITERION_OUTPUT_JSON` format: one `{"group":…,"id":…,"mean_ns":…}`
//! object per line) and fails loudly on mean-time regressions.
//!
//! ```text
//! cargo run -p submod-bench --bin bench-diff -- BASELINE CURRENT [--tolerance 0.20]
//! cargo run -p submod-bench --bin bench-diff -- FILE --trace-overhead [--tolerance 0.03]
//! ```
//!
//! Exit status 1 when any benchmark present in both files got slower by
//! more than the tolerance (default +20 %). Entries that exist in only
//! one file are listed but never fail the diff (benches come and go
//! across PRs).
//!
//! `--trace-overhead` is the observability gate: instead of diffing two
//! files, it compares `obs_overhead/selection_spans` and
//! `obs_overhead/selection_full` against `obs_overhead/selection_off`
//! *within one file* (all three run in one process on one runner, see
//! `benches/obs_overhead.rs`) and fails when either tracing mode costs
//! more than the tolerance over the off path.
//!
//! `--journal-overhead` is the crash-safety gate: it compares
//! `journal_overhead/selection_journaled` against
//! `journal_overhead/selection_plain` *within one file* (both run in one
//! process on one runner, see `benches/journal_overhead.rs`) and fails
//! when write-ahead journaling costs more than the tolerance (default
//! +5 %) over the plain selection:
//!
//! ```text
//! cargo run -p submod-bench --bin bench-diff -- FILE --journal-overhead [--tolerance 0.05]
//! ```
//!
//! `--dataflow-ratio` is the executor-overhead gate: within each file it
//! computes the same-runner dataflow/in_memory mean-time ratios of the
//! `bounding_executor_2k` and `greedy_executor_2k` groups (ratios are
//! runner-independent, unlike raw nanoseconds), and with two files fails
//! when any current ratio exceeds its baseline ratio by more than the
//! tolerance. With one file it just reports the ratios:
//!
//! ```text
//! cargo run -p submod-bench --bin bench-diff -- FILE --dataflow-ratio
//! cargo run -p submod-bench --bin bench-diff -- BASELINE CURRENT --dataflow-ratio [--tolerance 0.20]
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed baseline entry, keyed by `group/id`.
#[derive(Clone, Debug, PartialEq)]
struct Entry {
    mean_ns: f64,
}

/// Pulls the string value of `"key":"…"` out of a flat JSON object line,
/// honoring the `\"` / `\\` escapes criterion's JSON writer emits.
fn json_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
}

/// Pulls the numeric value of `"key":N` out of a flat JSON object line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn parse_baselines(content: &str) -> BTreeMap<String, Entry> {
    let mut out = BTreeMap::new();
    for line in content.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (Some(group), Some(id), Some(mean_ns)) =
            (json_str(line, "group"), json_str(line, "id"), json_num(line, "mean_ns"))
        else {
            eprintln!("warning: skipping unparsable baseline line: {line}");
            continue;
        };
        // Last write wins: CRITERION_OUTPUT_JSON appends, so a re-run
        // file legitimately contains repeated keys.
        out.insert(format!("{group}/{id}"), Entry { mean_ns });
    }
    out
}

/// The `--trace-overhead` gate: `spans`/`full` vs `off` within one run.
/// Returns `None` (exit 2) when the obs_overhead entries are missing.
fn trace_overhead_gate(entries: &BTreeMap<String, Entry>, tolerance: f64) -> Option<bool> {
    let get = |mode: &str| {
        let key = format!("obs_overhead/selection_{mode}");
        let entry = entries.get(&key);
        if entry.is_none() {
            eprintln!("error: `{key}` not found — run `cargo bench -p submod-bench` with CRITERION_OUTPUT_JSON set");
        }
        entry
    };
    let off = get("off")?;
    let mut ok = true;
    println!(
        "{:<45} {:>12} {:>12} {:>9}  verdict (tolerance +{:.1} % over off)",
        "trace mode",
        "off ns",
        "mode ns",
        "ratio",
        tolerance * 100.0
    );
    for mode in ["spans", "full"] {
        let entry = get(mode)?;
        let ratio = entry.mean_ns / off.mean_ns;
        let verdict = if ratio > 1.0 + tolerance { "REGRESSION" } else { "ok" };
        ok &= ratio <= 1.0 + tolerance;
        println!(
            "{:<45} {:>12.0} {:>12.0} {ratio:>8.3}x  {verdict}",
            format!("obs_overhead/selection_{mode}"),
            off.mean_ns,
            entry.mean_ns
        );
    }
    Some(ok)
}

/// The `--journal-overhead` gate: the journaled selection vs the plain
/// one within one run. Returns `None` (exit 2) when the
/// journal_overhead entries are missing.
fn journal_overhead_gate(entries: &BTreeMap<String, Entry>, tolerance: f64) -> Option<bool> {
    let get = |variant: &str| {
        let key = format!("journal_overhead/selection_{variant}");
        let entry = entries.get(&key);
        if entry.is_none() {
            eprintln!("error: `{key}` not found — run `cargo bench -p submod-bench` with CRITERION_OUTPUT_JSON set");
        }
        entry
    };
    let plain = get("plain")?;
    let journaled = get("journaled")?;
    let ratio = journaled.mean_ns / plain.mean_ns;
    let ok = ratio <= 1.0 + tolerance;
    println!(
        "{:<45} {:>12} {:>12} {:>9}  verdict (tolerance +{:.1} % over plain)",
        "journal mode",
        "plain ns",
        "journaled ns",
        "ratio",
        tolerance * 100.0
    );
    println!(
        "{:<45} {:>12.0} {:>12.0} {ratio:>8.3}x  {}",
        "journal_overhead/selection_journaled",
        plain.mean_ns,
        journaled.mean_ns,
        if ok { "ok" } else { "REGRESSION" }
    );
    Some(ok)
}

/// The same-runner executor pairs whose dataflow/in_memory ratio the
/// `--dataflow-ratio` gate tracks.
const RATIO_PAIRS: [(&str, &str); 3] = [
    ("bounding_executor_2k", "dataflow_4workers"),
    ("greedy_executor_2k", "dataflow"),
    ("greedy_executor_2k", "dataflow_batched"),
];

/// Computes the dataflow/in_memory mean-time ratio for every tracked
/// pair. Returns `None` (exit 2) when any entry is missing.
fn dataflow_ratios(entries: &BTreeMap<String, Entry>) -> Option<Vec<(String, f64)>> {
    let mut out = Vec::new();
    for (group, id) in RATIO_PAIRS {
        let get = |id: &str| {
            let key = format!("{group}/{id}");
            let entry = entries.get(&key);
            if entry.is_none() {
                eprintln!("error: `{key}` not found — run `cargo bench -p submod-bench` with CRITERION_OUTPUT_JSON set");
            }
            entry
        };
        let reference = get("in_memory")?;
        let dataflow = get(id)?;
        out.push((format!("{group}/{id}"), dataflow.mean_ns / reference.mean_ns));
    }
    Some(out)
}

/// The `--dataflow-ratio` gate: every current same-runner ratio must stay
/// within `tolerance` of its baseline ratio. Returns `None` (exit 2)
/// when entries are missing from the *current* file; pairs absent from
/// the baseline (benches that did not exist on the previous commit) are
/// reported as new and never fail the gate.
fn dataflow_ratio_gate(
    baseline: &BTreeMap<String, Entry>,
    current: &BTreeMap<String, Entry>,
    tolerance: f64,
) -> Option<bool> {
    let cur = dataflow_ratios(current)?;
    let mut ok = true;
    println!(
        "{:<45} {:>12} {:>12} {:>9}  verdict (tolerance +{:.0} % over baseline ratio)",
        "executor pair",
        "base ratio",
        "cur ratio",
        "drift",
        tolerance * 100.0
    );
    for (name, cur_ratio) in &cur {
        let (group, id) = name.split_once('/').expect("pair names are group/id");
        let base_ratio = match (
            baseline.get(&format!("{group}/in_memory")),
            baseline.get(&format!("{group}/{id}")),
        ) {
            (Some(reference), Some(dataflow)) => dataflow.mean_ns / reference.mean_ns,
            _ => {
                println!("{name:<45} {:>12} {cur_ratio:>11.2}x {:>9}  new", "-", "-");
                continue;
            }
        };
        let drift = cur_ratio / base_ratio;
        let verdict = if drift > 1.0 + tolerance { "REGRESSION" } else { "ok" };
        ok &= drift <= 1.0 + tolerance;
        println!("{name:<45} {base_ratio:>11.2}x {cur_ratio:>11.2}x {drift:>8.3}x  {verdict}");
    }
    Some(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut tolerance = None;
    let mut trace_overhead = false;
    let mut journal_overhead = false;
    let mut dataflow_ratio = false;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--tolerance" {
            i += 1;
            tolerance = match args.get(i).and_then(|s| s.parse().ok()) {
                Some(t) => Some(t),
                None => {
                    eprintln!("error: --tolerance expects a number");
                    return ExitCode::from(2);
                }
            };
        } else if args[i] == "--trace-overhead" {
            trace_overhead = true;
        } else if args[i] == "--journal-overhead" {
            journal_overhead = true;
        } else if args[i] == "--dataflow-ratio" {
            dataflow_ratio = true;
        } else {
            positional.push(args[i].clone());
        }
        i += 1;
    }

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };

    if trace_overhead {
        if positional.len() != 1 {
            eprintln!("usage: bench-diff FILE --trace-overhead [--tolerance 0.03]");
            return ExitCode::from(2);
        }
        let tolerance = tolerance.unwrap_or(0.03);
        return match trace_overhead_gate(&parse_baselines(&read(&positional[0])), tolerance) {
            Some(true) => {
                println!("\ntracing overhead within +{:.1} % of off", tolerance * 100.0);
                ExitCode::SUCCESS
            }
            Some(false) => {
                eprintln!("\nFAILED: tracing overhead beyond +{:.1} %", tolerance * 100.0);
                ExitCode::FAILURE
            }
            None => ExitCode::from(2),
        };
    }

    if journal_overhead {
        if positional.len() != 1 {
            eprintln!("usage: bench-diff FILE --journal-overhead [--tolerance 0.05]");
            return ExitCode::from(2);
        }
        let tolerance = tolerance.unwrap_or(0.05);
        return match journal_overhead_gate(&parse_baselines(&read(&positional[0])), tolerance) {
            Some(true) => {
                println!("\njournaling overhead within +{:.1} % of plain", tolerance * 100.0);
                ExitCode::SUCCESS
            }
            Some(false) => {
                eprintln!("\nFAILED: journaling overhead beyond +{:.1} %", tolerance * 100.0);
                ExitCode::FAILURE
            }
            None => ExitCode::from(2),
        };
    }

    if dataflow_ratio {
        let tolerance = tolerance.unwrap_or(0.20);
        return match positional.as_slice() {
            [file] => match dataflow_ratios(&parse_baselines(&read(file))) {
                Some(ratios) => {
                    println!("{:<45} {:>12}", "executor pair", "ratio");
                    for (name, ratio) in &ratios {
                        println!("{name:<45} {ratio:>11.2}x");
                    }
                    ExitCode::SUCCESS
                }
                None => ExitCode::from(2),
            },
            [baseline, current] => {
                let baseline = parse_baselines(&read(baseline));
                let current = parse_baselines(&read(current));
                match dataflow_ratio_gate(&baseline, &current, tolerance) {
                    Some(true) => {
                        println!(
                            "\ndataflow/in_memory ratios within +{:.0} % of baseline",
                            tolerance * 100.0
                        );
                        ExitCode::SUCCESS
                    }
                    Some(false) => {
                        eprintln!(
                            "\nFAILED: dataflow/in_memory ratio regressed beyond +{:.0} %",
                            tolerance * 100.0
                        );
                        ExitCode::FAILURE
                    }
                    None => ExitCode::from(2),
                }
            }
            _ => {
                eprintln!(
                    "usage: bench-diff [BASELINE] CURRENT --dataflow-ratio [--tolerance 0.20]"
                );
                ExitCode::from(2)
            }
        };
    }

    if positional.len() != 2 {
        eprintln!("usage: bench-diff BASELINE CURRENT [--tolerance 0.20]");
        return ExitCode::from(2);
    }
    let tolerance = tolerance.unwrap_or(0.20);
    let baseline = parse_baselines(&read(&positional[0]));
    let current = parse_baselines(&read(&positional[1]));

    let mut regressions = Vec::new();
    println!(
        "{:<45} {:>12} {:>12} {:>9}  verdict (tolerance +{:.0} %)",
        "benchmark",
        "baseline ns",
        "current ns",
        "ratio",
        tolerance * 100.0
    );
    for (key, base) in &baseline {
        let Some(cur) = current.get(key) else {
            println!("{key:<45} {:>12.0} {:>12} {:>9}  removed", base.mean_ns, "-", "-");
            continue;
        };
        let ratio = cur.mean_ns / base.mean_ns;
        let verdict = if ratio > 1.0 + tolerance {
            regressions.push((key.clone(), ratio));
            "REGRESSION"
        } else if ratio < 1.0 - tolerance {
            "improved"
        } else {
            "ok"
        };
        println!("{key:<45} {:>12.0} {:>12.0} {ratio:>8.2}x  {verdict}", base.mean_ns, cur.mean_ns);
    }
    for key in current.keys().filter(|k| !baseline.contains_key(*k)) {
        println!("{key:<45} {:>12} {:>12.0} {:>9}  new", "-", current[key].mean_ns, "-");
    }

    if regressions.is_empty() {
        println!("\nno regressions beyond +{:.0} %", tolerance * 100.0);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nFAILED: {} benchmark(s) regressed beyond +{:.0} %:",
            regressions.len(),
            tolerance * 100.0
        );
        for (key, ratio) in &regressions {
            eprintln!("  {key}: {ratio:.2}x the baseline mean");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINES: &str = r#"
{"group":"g","id":"fast","mean_ns":1000,"min_ns":900,"max_ns":1100,"samples":10}
{"group":"g","id":"slow","mean_ns":5000,"min_ns":4000,"max_ns":6000,"samples":10}
"#;

    #[test]
    fn parses_json_lines() {
        let map = parse_baselines(LINES);
        assert_eq!(map.len(), 2);
        assert_eq!(map["g/fast"].mean_ns, 1000.0);
        assert_eq!(map["g/slow"].mean_ns, 5000.0);
    }

    #[test]
    fn last_write_wins_on_repeated_keys() {
        let twice = format!(
            "{LINES}\n{}",
            r#"{"group":"g","id":"fast","mean_ns":1500,"min_ns":1,"max_ns":2,"samples":10}"#
        );
        assert_eq!(parse_baselines(&twice)["g/fast"].mean_ns, 1500.0);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let map = parse_baselines("not json\n{\"group\":\"g\"}\n");
        assert!(map.is_empty());
    }

    #[test]
    fn field_extractors() {
        let line = r#"{"group":"a_b","id":"x","mean_ns":12345.5,"samples":3}"#;
        assert_eq!(json_str(line, "group").as_deref(), Some("a_b"));
        assert_eq!(json_str(line, "id").as_deref(), Some("x"));
        assert_eq!(json_num(line, "mean_ns"), Some(12345.5));
        assert_eq!(json_num(line, "samples"), Some(3.0));
        assert_eq!(json_num(line, "missing"), None);
    }

    fn overhead_entries(off: f64, spans: f64, full: f64) -> BTreeMap<String, Entry> {
        [("off", off), ("spans", spans), ("full", full)]
            .into_iter()
            .map(|(mode, mean_ns)| (format!("obs_overhead/selection_{mode}"), Entry { mean_ns }))
            .collect()
    }

    #[test]
    fn trace_overhead_gate_passes_within_tolerance() {
        let entries = overhead_entries(1000.0, 1005.0, 1020.0);
        assert_eq!(trace_overhead_gate(&entries, 0.03), Some(true));
    }

    #[test]
    fn trace_overhead_gate_fails_beyond_tolerance() {
        let entries = overhead_entries(1000.0, 1005.0, 1100.0);
        assert_eq!(trace_overhead_gate(&entries, 0.03), Some(false));
    }

    #[test]
    fn trace_overhead_gate_requires_all_modes() {
        let mut entries = overhead_entries(1000.0, 1005.0, 1010.0);
        entries.remove("obs_overhead/selection_full");
        assert_eq!(trace_overhead_gate(&entries, 0.03), None);
        assert_eq!(trace_overhead_gate(&BTreeMap::new(), 0.03), None);
    }

    fn journal_entries(plain: f64, journaled: f64) -> BTreeMap<String, Entry> {
        [("plain", plain), ("journaled", journaled)]
            .into_iter()
            .map(|(variant, mean_ns)| {
                (format!("journal_overhead/selection_{variant}"), Entry { mean_ns })
            })
            .collect()
    }

    #[test]
    fn journal_overhead_gate_passes_within_tolerance() {
        let entries = journal_entries(1000.0, 1040.0);
        assert_eq!(journal_overhead_gate(&entries, 0.05), Some(true));
    }

    #[test]
    fn journal_overhead_gate_fails_beyond_tolerance() {
        let entries = journal_entries(1000.0, 1100.0);
        assert_eq!(journal_overhead_gate(&entries, 0.05), Some(false));
    }

    #[test]
    fn journal_overhead_gate_requires_both_entries() {
        let mut entries = journal_entries(1000.0, 1010.0);
        entries.remove("journal_overhead/selection_journaled");
        assert_eq!(journal_overhead_gate(&entries, 0.05), None);
        assert_eq!(journal_overhead_gate(&BTreeMap::new(), 0.05), None);
    }

    fn executor_entries(pairs: &[(&str, f64)]) -> BTreeMap<String, Entry> {
        pairs.iter().map(|&(key, mean_ns)| (key.to_string(), Entry { mean_ns })).collect()
    }

    fn full_executor_entries(bounding: f64, greedy: f64, batched: f64) -> BTreeMap<String, Entry> {
        executor_entries(&[
            ("bounding_executor_2k/in_memory", 1000.0),
            ("bounding_executor_2k/dataflow_4workers", 1000.0 * bounding),
            ("greedy_executor_2k/in_memory", 2000.0),
            ("greedy_executor_2k/dataflow", 2000.0 * greedy),
            ("greedy_executor_2k/dataflow_batched", 2000.0 * batched),
        ])
    }

    #[test]
    fn dataflow_ratios_are_same_runner_quotients() {
        let ratios = dataflow_ratios(&full_executor_entries(2.5, 3.0, 1.5)).unwrap();
        assert_eq!(ratios.len(), 3);
        assert!((ratios[0].1 - 2.5).abs() < 1e-12, "bounding ratio {}", ratios[0].1);
        assert!((ratios[1].1 - 3.0).abs() < 1e-12);
        assert!((ratios[2].1 - 1.5).abs() < 1e-12);
    }

    #[test]
    fn dataflow_ratio_gate_passes_within_tolerance() {
        let baseline = full_executor_entries(2.5, 3.0, 1.5);
        // Raw times may shift runner to runner; only the ratios count.
        let current = full_executor_entries(2.6, 3.3, 1.6);
        assert_eq!(dataflow_ratio_gate(&baseline, &current, 0.20), Some(true));
    }

    #[test]
    fn dataflow_ratio_gate_fails_on_ratio_regression() {
        let baseline = full_executor_entries(2.5, 3.0, 1.5);
        let current = full_executor_entries(2.5, 3.0, 2.2);
        assert_eq!(dataflow_ratio_gate(&baseline, &current, 0.20), Some(false));
    }

    #[test]
    fn dataflow_ratio_gate_requires_all_current_entries() {
        let baseline = full_executor_entries(2.5, 3.0, 1.5);
        let mut current = full_executor_entries(2.5, 3.0, 1.5);
        current.remove("greedy_executor_2k/dataflow_batched");
        assert_eq!(dataflow_ratio_gate(&baseline, &current, 0.20), None);
        assert_eq!(dataflow_ratios(&BTreeMap::new()), None);
    }

    #[test]
    fn dataflow_ratio_gate_passes_pairs_missing_from_the_baseline() {
        // The previous commit may predate a bench group; new pairs are
        // reported but never gated.
        let mut baseline = full_executor_entries(2.5, 3.0, 1.5);
        baseline.remove("greedy_executor_2k/in_memory");
        baseline.remove("greedy_executor_2k/dataflow");
        baseline.remove("greedy_executor_2k/dataflow_batched");
        let current = full_executor_entries(2.5, 9.0, 9.0);
        assert_eq!(dataflow_ratio_gate(&baseline, &current, 0.20), Some(true));
    }

    /// Keys with the escapes criterion's `json_escape` writes must parse
    /// back to the original text, not truncate at the first quote.
    #[test]
    fn escaped_keys_roundtrip() {
        let line = r#"{"group":"g \"q\" \\ tail","id":"x","mean_ns":10,"samples":1}"#;
        assert_eq!(json_str(line, "group").as_deref(), Some(r#"g "q" \ tail"#));
        let map = parse_baselines(line);
        assert_eq!(map[r#"g "q" \ tail/x"#].mean_ns, 10.0);
    }
}
