//! Profiles the Exact → IVF build-time crossover that
//! `KnnBackend::auto` switches on.
//!
//! Builds the 10-NN graph with both backends — IVF at exactly the
//! parameters `auto` would pick (`nlist = √n`, `nprobe = 8`) — over a
//! geometric ladder of dataset sizes and reports the speedup, so the
//! constant `submod_knn::AUTO_EXACT_MAX_POINTS` can be re-derived on new
//! hardware instead of guessed.
//!
//! ```text
//! cargo run --release -p submod-bench --bin knn-crossover [-- --max N]
//! ```

use rand::{Rng, SeedableRng};
use std::time::Instant;
use submod_knn::{build_knn_graph, Embeddings, IvfIndex, KnnBackend};

const DIM: usize = 32;
const K: usize = 10;

fn embeddings(n: usize, seed: u64) -> Embeddings {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let flat: Vec<f32> = (0..n * DIM).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
    Embeddings::from_flat(DIM, flat).unwrap()
}

fn time_build(data: &Embeddings, backend: &KnnBackend) -> f64 {
    let start = Instant::now();
    let graph = build_knn_graph(data, K, backend, 7).expect("build");
    let elapsed = start.elapsed().as_secs_f64();
    assert!(graph.num_nodes() == data.len());
    elapsed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max: usize = args
        .iter()
        .position(|a| a == "--max")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000);

    println!("Exact vs IVF(auto params: nlist = sqrt(n), nprobe = 8), {DIM}-d, {K}-NN");
    println!("{:>8} {:>12} {:>12} {:>9}", "n", "exact (s)", "ivf (s)", "speedup");
    let mut n = 500usize;
    let mut crossover = None;
    while n <= max {
        let data = embeddings(n, n as u64);
        let exact = time_build(&data, &KnnBackend::Exact);
        let ivf =
            time_build(&data, &KnnBackend::Ivf { nlist: IvfIndex::default_nlist(n), nprobe: 8 });
        println!("{n:>8} {exact:>12.3} {ivf:>12.3} {:>8.2}x", exact / ivf);
        if crossover.is_none() && ivf < exact {
            crossover = Some(n);
        }
        n *= 2;
    }
    match crossover {
        Some(n) => println!("\nIVF first wins at n = {n} (AUTO_EXACT_MAX_POINTS candidate)"),
        None => println!("\nexact won everywhere up to {max}; raise --max"),
    }
}
