//! `experiments profile`: one traced end-to-end pass over every major
//! stage — k-NN build, bounding (both drivers), multi-round greedy
//! (both drivers) — with `SUBMOD_TRACE=full` forced on. Exports the
//! chrome-trace (`profile_trace.json`, loadable in Perfetto or
//! `chrome://tracing`) and the flat metrics (`profile_metrics.json`),
//! and regenerates the phase-breakdown markdown from the span stream:
//! `scale1_profile.md` at `--scale 1.0`, `profile_scale<F>.md`
//! otherwise.

use crate::common::BenchCtx;
use crate::output::{print_table, write_artifact};
use std::collections::BTreeMap;
use std::time::Instant;
use submod_core::NodeId;
use submod_data::DatasetConfig;
use submod_dataflow::Pipeline;
use submod_dist::{
    bound_dataflow, bound_in_memory, distributed_greedy, distributed_greedy_dataflow,
    BoundingConfig, DistGreedyConfig, SamplingStrategy,
};
use submod_knn::{build_knn_graph, KnnBackend};
use submod_obs::{MetricsSnapshot, SpanEvent, TraceMode};

/// Per-span-name rollup: occurrence count, total and max inclusive µs.
type Rollup = BTreeMap<&'static str, (u64, u64, u64)>;

/// Runs one named phase, folding the process RSS into the registry
/// afterwards and recording the phase's wall clock.
fn run_phase(phases: &mut Vec<(&'static str, f64)>, name: &'static str, f: impl FnOnce()) {
    let start = Instant::now();
    f();
    submod_obs::sample_rss();
    let secs = start.elapsed().as_secs_f64();
    println!("  {name}: {secs:.2} s");
    phases.push((name, secs));
}

/// Runs the traced end-to-end profile on the CIFAR-like dataset.
pub fn profile(ctx: &BenchCtx) {
    // Forced programmatically: a profile without spans is meaningless,
    // and forcing it here keeps the subcommand self-contained.
    submod_obs::set_mode(TraceMode::Full);

    let config = DatasetConfig::cifar100_like().scaled(ctx.scale);
    let instance = ctx.cifar();
    let graph = ctx.bench_graph(&instance.graph, "profile");
    let objective = instance.objective(0.9).expect("objective");
    let n = instance.len();
    let k = n / 10;
    let ground: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    let bounding = BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 17).expect("config");
    let greedy = DistGreedyConfig::new(8, 4).expect("config").seed(17).adaptive(true);
    let pipeline = Pipeline::new(8).expect("pipeline");
    let backend = KnnBackend::auto(n);

    // Everything above (dataset generation, graph-cache hits, the
    // store rebase) is setup; the measured phases start clean. The
    // k-NN build below runs explicitly — never through the cache — so
    // the trace always carries the `knn.build` subtree.
    println!(
        "profile: {n} points, {} undirected edges, tracing full",
        graph.num_undirected_edges()
    );
    submod_obs::reset();
    submod_obs::mark_rss_baseline();

    let wall = Instant::now();
    let mut phases: Vec<(&'static str, f64)> = Vec::new();
    run_phase(&mut phases, "knn build", || {
        build_knn_graph(&instance.embeddings, config.knn_k(), &backend, config.seed())
            .map(drop)
            .expect("knn build");
    });
    run_phase(&mut phases, "bounding (in-memory driver)", || {
        bound_in_memory(&graph, &objective, k, &bounding).map(drop).expect("bounding");
    });
    run_phase(&mut phases, "bounding (dataflow driver)", || {
        bound_dataflow(&pipeline, &graph, &objective, k, &bounding)
            .map(drop)
            .expect("dataflow bounding");
    });
    run_phase(&mut phases, "greedy (in-memory driver)", || {
        distributed_greedy(&graph, &objective, &ground, k, &greedy).map(drop).expect("greedy");
    });
    run_phase(&mut phases, "greedy (dataflow driver)", || {
        distributed_greedy_dataflow(&pipeline, &graph, &objective, &ground, k, &greedy)
            .map(drop)
            .expect("dataflow greedy");
    });
    // Same instance, same selection (the differential suite pins
    // bit-identity), but up to 64 certified pops per engine pass.
    let batched = greedy.clone().winner_batch(64);
    run_phase(&mut phases, "greedy (dataflow driver, winner_batch 64)", || {
        distributed_greedy_dataflow(&pipeline, &graph, &objective, &ground, k, &batched)
            .map(drop)
            .expect("batched dataflow greedy");
    });
    let total_secs = wall.elapsed().as_secs_f64();

    let events = submod_obs::take_spans();
    assert!(
        events.iter().any(|e| e.parent != 0),
        "profile trace should contain nested spans (knn build / bounding passes / greedy rounds)"
    );
    let snap = submod_obs::snapshot();
    let _ =
        write_artifact(&ctx.out_dir, "profile_trace.json", &submod_obs::chrome_trace_json(&events));
    let _ = write_artifact(&ctx.out_dir, "profile_metrics.json", &submod_obs::metrics_json(&snap));

    let rollup = rollup_spans(&events);
    let rows: Vec<Vec<String>> = rollup
        .iter()
        .map(|(name, (count, total_us, max_us))| {
            vec![
                name.to_string(),
                count.to_string(),
                format!("{:.1} ms", *total_us as f64 / 1000.0),
                format!("{:.1} ms", *max_us as f64 / 1000.0),
            ]
        })
        .collect();
    print_table("span rollup (inclusive time)", &["span", "count", "total", "max"], &rows);

    let md =
        render_markdown(ctx, n, graph.num_undirected_edges(), total_secs, &phases, &rollup, &snap);
    let md_name = if (ctx.scale - 1.0).abs() < 1e-9 {
        "scale1_profile.md".to_string()
    } else {
        format!("profile_scale{}.md", ctx.scale)
    };
    let _ = write_artifact(&ctx.out_dir, &md_name, &md);
}

/// Aggregates the span stream per name.
fn rollup_spans(events: &[SpanEvent]) -> Rollup {
    let mut rollup = Rollup::new();
    for e in events {
        let entry = rollup.entry(e.name).or_insert((0, 0, 0));
        entry.0 += 1;
        entry.1 += e.dur_us;
        entry.2 = entry.2.max(e.dur_us);
    }
    rollup
}

/// Renders the phase-breakdown markdown from the measured wall clocks,
/// the span rollup, and the registry snapshot.
fn render_markdown(
    ctx: &BenchCtx,
    n: usize,
    edges: usize,
    total_secs: f64,
    phases: &[(&'static str, f64)],
    rollup: &Rollup,
    snap: &MetricsSnapshot,
) -> String {
    let store = match ctx.graph_store {
        crate::common::GraphStoreMode::Mem => "mem",
        crate::common::GraphStoreMode::Mmap => "mmap",
    };
    let mut md = format!(
        "# `--scale {}` end-to-end profile\n\n\
         Generated by `experiments profile --scale {}` from the `submod_obs`\n\
         span stream. The chrome-trace itself is `profile_trace.json`\n\
         (load it in [Perfetto](https://ui.perfetto.dev) or\n\
         `chrome://tracing`); the flat metrics registry is\n\
         `profile_metrics.json`. `SUBMOD_TRACE=full` is forced by the\n\
         subcommand, so the trace nests k-NN search blocks under the\n\
         build, bounding passes under `bound.run`, and greedy rounds\n\
         under `greedy.run`, across worker-pool boundaries.\n\n\
         **Instance:** {n} points × 64-d CIFAR-like, {edges} undirected\n\
         edges, α = 0.9, k = n/10.\n\
         **Runner:** {} worker thread(s), `{}` kernel dispatch, graph\n\
         store `{store}`, 8 dataflow workers / 8 machines × 4 rounds.\n\n\
         ## Phase wall-clock\n\n\
         | Phase | Wall clock |\n|---|---|\n",
        ctx.scale,
        ctx.scale,
        submod_exec::current_num_threads(),
        submod_kernels::backend().name(),
    );
    for (name, secs) in phases {
        md.push_str(&format!("| {name} | {secs:.2} s |\n"));
    }
    md.push_str(&format!("| **total** | **{total_secs:.2} s** |\n"));

    md.push_str(
        "\n## Span rollup (inclusive time)\n\n| Span | Count | Total | Max |\n|---|---|---|---|\n",
    );
    for (name, (count, total_us, max_us)) in rollup {
        md.push_str(&format!(
            "| `{name}` | {count} | {:.1} ms | {:.1} ms |\n",
            *total_us as f64 / 1000.0,
            *max_us as f64 / 1000.0,
        ));
    }

    md.push_str("\n## Registry highlights\n\n| Metric | Value |\n|---|---|\n");
    let highlights = [
        "knn.build.points",
        "knn.search.blocks",
        "kernels.batch_top_k.calls",
        "kernels.batch_top_k.row_scans",
        "bounding.passes",
        "bounding.peak_pass_bytes",
        "greedy.rounds",
        "greedy.steps",
        "greedy.winners_collected",
        "dataflow.records_shuffled",
        "dataflow.stages_fused",
        "dataflow.spill.bytes_written",
        "dataflow.broadcast.bytes",
        "exec.steals",
        "exec.parks",
        "process.rss_baseline_kib",
        "process.rss_peak_kib",
    ];
    for name in highlights {
        let value = snap.counters.get(name).or_else(|| snap.gauges.get(name));
        if let Some(v) = value {
            md.push_str(&format!("| `{name}` | {v} |\n"));
        }
    }
    md
}
