//! A checksummed, append-only write-ahead journal for long selection
//! runs.
//!
//! The selection stack records one [`Record`] per completed unit of work
//! (a greedy round, a bounding cycle, a GreeDi map phase) and fsyncs at
//! those boundaries. After a crash, [`replay`] walks the file, validates
//! every record against its FNV-1a-64 checksum, **truncates the torn
//! tail** (a partially written final record is exactly what a crash
//! mid-append leaves behind), and hands back the complete prefix — the
//! run resumes from the last boundary, bitwise-identical to a run that
//! never died.
//!
//! # File format
//!
//! The format discipline is the graph store's
//! (`crates/core/src/store.rs`): magic + version header, explicit
//! little-endian integers, per-record checksums, zero-checked reserved
//! bytes, and a typed error for every way a file can be wrong.
//!
//! | offset | size | field                                      |
//! |--------|------|--------------------------------------------|
//! | 0      | 8    | magic `SUBMJNL1`                           |
//! | 8      | 4    | format version (`1`), little-endian        |
//! | 12     | 4    | flags (must be 0)                          |
//! | 16     | 16   | reserved, must be zero                     |
//! | 32     | …    | records                                    |
//!
//! Each record is framed as:
//!
//! | size | field                                              |
//! |------|----------------------------------------------------|
//! | 4    | payload length `L`, little-endian                  |
//! | `L`  | payload (`u32` record kind + kind-specific fields) |
//! | 8    | FNV-1a-64 checksum of the payload                  |
//!
//! # Replay rules
//!
//! 1. A bad header (magic, version, flags, reserved, or fewer than 32
//!    bytes) is a typed error — the file is not a journal.
//! 2. Records are read in order. An **incomplete frame** (length prefix
//!    or payload or checksum cut short) or a **checksum mismatch** ends
//!    the walk: everything from that offset on is the torn tail, and
//!    [`open_resume`] truncates it before appending.
//! 3. A checksum-*valid* record that does not decode (unknown kind,
//!    short payload) is **not** a torn tail — it is a format
//!    incompatibility and surfaces as a typed error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use submod_obs::faults::{self, FaultSite};

/// Journal file magic.
pub const MAGIC: [u8; 8] = *b"SUBMJNL1";
/// Current format version.
pub const VERSION: u32 = 1;
/// Header length in bytes.
pub const HEADER_LEN: usize = 32;
/// Largest payload [`replay`] will attempt to allocate. A length prefix
/// beyond this on a well-formed journal is corruption, treated as torn.
pub const MAX_RECORD_LEN: usize = 1 << 28;

const FNV_BASIS: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a-64 over `bytes` — the same checksum the graph store uses.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = FNV_BASIS;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Everything that can go wrong opening, appending to, or replaying a
/// journal.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// An underlying I/O operation failed.
    Io {
        /// What the journal was doing.
        context: &'static str,
        /// The OS error (shared so the error type stays cheaply `Clone`).
        source: Arc<io::Error>,
    },
    /// The file does not start with the journal magic.
    BadMagic {
        /// The bytes found where the magic should be.
        found: [u8; 8],
    },
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The header carries flags this build does not know.
    UnknownFlags {
        /// The flag word found in the header.
        found: u32,
    },
    /// A reserved header byte was non-zero.
    ReservedNonZero {
        /// Byte offset of the first non-zero reserved byte.
        position: usize,
    },
    /// The file is shorter than the fixed header.
    TruncatedHeader {
        /// Actual file length in bytes.
        actual: u64,
    },
    /// A checksum-valid record carries a kind this build cannot decode.
    UnknownRecordKind {
        /// The unrecognized kind tag.
        kind: u32,
    },
    /// A checksum-valid record payload is structurally malformed.
    Malformed {
        /// What was wrong.
        detail: &'static str,
    },
}

impl JournalError {
    fn io(context: &'static str, source: io::Error) -> Self {
        JournalError::Io { context, source: Arc::new(source) }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { context, source } => {
                write!(f, "journal I/O failure while {context}: {source}")
            }
            JournalError::BadMagic { found } => {
                write!(f, "not a journal file (magic {found:02X?})")
            }
            JournalError::UnsupportedVersion { found } => {
                write!(f, "unsupported journal version {found} (this build reads {VERSION})")
            }
            JournalError::UnknownFlags { found } => {
                write!(f, "journal header carries unknown flags {found:#010X}")
            }
            JournalError::ReservedNonZero { position } => {
                write!(f, "journal reserved header byte at offset {position} is non-zero")
            }
            JournalError::TruncatedHeader { actual } => {
                write!(f, "journal shorter than its {HEADER_LEN}-byte header ({actual} bytes)")
            }
            JournalError::UnknownRecordKind { kind } => {
                write!(f, "journal record kind {kind} is unknown to this build")
            }
            JournalError::Malformed { detail } => {
                write!(f, "malformed journal record: {detail}")
            }
        }
    }
}

impl Error for JournalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Cumulative `GreedyStats` at a round boundary (plain numbers so the
/// journal does not depend on the selection crates).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GreedySnapshot {
    /// Rounds executed so far.
    pub rounds: u64,
    /// Synchronized argmax steps executed so far.
    pub steps: u64,
    /// Peak per-round driver bytes so far.
    pub peak_round_bytes: u64,
    /// Largest single-step winner collection so far.
    pub peak_step_winners: u64,
    /// Winner rows collected so far.
    pub winners_collected: u64,
    /// Peak persistent driver-state bytes so far.
    pub peak_state_bytes: u64,
    /// Broadcast bytes shipped to workers so far.
    pub bytes_broadcast: u64,
}

/// Cumulative `BoundingStats` at a cycle boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoundingSnapshot {
    /// Grow + shrink passes executed so far.
    pub passes: u64,
    /// Peak per-pass driver bytes so far.
    pub peak_pass_bytes: u64,
    /// Largest candidate list so far.
    pub peak_candidates: u64,
    /// Peak persistent driver-state bytes so far.
    pub peak_state_bytes: u64,
}

/// One journal record. Kinds cover the round-boundary state of every
/// journaled algorithm in the selection stack.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Record {
    /// Run header: written first, before any work. `fingerprint` hashes
    /// the full run configuration; a resume whose fingerprint differs
    /// must refuse the journal rather than splice two different runs.
    RunStart {
        /// Configuration fingerprint the resume is validated against.
        fingerprint: u64,
        /// Algorithm tag (the dist layer's enum, stored as a number).
        algorithm: u64,
        /// Ground-set size.
        n: u64,
        /// Selection budget.
        k: u64,
        /// Base seed of the run.
        seed: u64,
        /// Machine count.
        machines: u64,
        /// Configured round count (0 when not applicable).
        rounds: u64,
    },
    /// One completed multi-round greedy round (also the GreeDi map
    /// phase, as round 1).
    GreedyRound {
        /// 1-based round number.
        round: u64,
        /// Pool size entering the round.
        input_size: u64,
        /// The round's Δ-schedule target.
        target: u64,
        /// Partitions used.
        partitions: u64,
        /// The round's keying seed (derived, stored for inspection).
        seed: u64,
        /// Cumulative stats at this boundary.
        stats: GreedySnapshot,
        /// The round's winners in pop order — the next round's pool.
        selected: Vec<u64>,
    },
    /// One completed bounding grow+shrink cycle.
    BoundingCycle {
        /// 1-based cycle number.
        cycle: u64,
        /// Whether the cycle changed any decision (a `false` here is the
        /// fixpoint: an uninterrupted run stops after this cycle).
        changed: bool,
        /// Grow passes executed so far.
        grow_rounds: u64,
        /// Shrink passes executed so far.
        shrink_rounds: u64,
        /// Pass counter (salts the sampling coins).
        pass: u64,
        /// Cumulative stats at this boundary.
        stats: BoundingSnapshot,
        /// Included ids, ascending.
        included: Vec<u64>,
        /// Excluded set as bitset words (dense — exclusions are `O(n)`).
        excluded_words: Vec<u64>,
    },
    /// The bounding phase's final outcome (lets a pipeline resume skip
    /// bounding entirely).
    BoundingDone {
        /// Grow passes executed.
        grow_rounds: u64,
        /// Shrink passes executed.
        shrink_rounds: u64,
        /// Budget still open after bounding.
        k_remaining: u64,
        /// Included ids, ascending.
        included: Vec<u64>,
        /// Excluded set as bitset words.
        excluded_words: Vec<u64>,
    },
    /// The run finished; nothing to resume.
    RunComplete,
}

const KIND_RUN_START: u32 = 1;
const KIND_GREEDY_ROUND: u32 = 2;
const KIND_BOUNDING_CYCLE: u32 = 3;
const KIND_BOUNDING_DONE: u32 = 4;
const KIND_RUN_COMPLETE: u32 = 5;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_vec(out: &mut Vec<u8>, values: &[u64]) {
    put_u64(out, values.len() as u64);
    for &v in values {
        put_u64(out, v);
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn u32(&mut self) -> Result<u32, JournalError> {
        let (head, tail) = self
            .bytes
            .split_first_chunk::<4>()
            .ok_or(JournalError::Malformed { detail: "record payload cut short" })?;
        self.bytes = tail;
        Ok(u32::from_le_bytes(*head))
    }

    fn u64(&mut self) -> Result<u64, JournalError> {
        let (head, tail) = self
            .bytes
            .split_first_chunk::<8>()
            .ok_or(JournalError::Malformed { detail: "record payload cut short" })?;
        self.bytes = tail;
        Ok(u64::from_le_bytes(*head))
    }

    fn vec(&mut self) -> Result<Vec<u64>, JournalError> {
        let len = self.u64()? as usize;
        if len > self.bytes.len() / 8 {
            return Err(JournalError::Malformed { detail: "record list length out of range" });
        }
        (0..len).map(|_| self.u64()).collect()
    }

    fn done(&self) -> Result<(), JournalError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(JournalError::Malformed { detail: "trailing bytes in record payload" })
        }
    }
}

impl Record {
    /// Encodes the record payload (kind tag plus fields, little-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Record::RunStart { fingerprint, algorithm, n, k, seed, machines, rounds } => {
                put_u32(&mut out, KIND_RUN_START);
                for v in [fingerprint, algorithm, n, k, seed, machines, rounds] {
                    put_u64(&mut out, *v);
                }
            }
            Record::GreedyRound {
                round,
                input_size,
                target,
                partitions,
                seed,
                stats,
                selected,
            } => {
                put_u32(&mut out, KIND_GREEDY_ROUND);
                for v in [round, input_size, target, partitions, seed] {
                    put_u64(&mut out, *v);
                }
                for v in [
                    stats.rounds,
                    stats.steps,
                    stats.peak_round_bytes,
                    stats.peak_step_winners,
                    stats.winners_collected,
                    stats.peak_state_bytes,
                    stats.bytes_broadcast,
                ] {
                    put_u64(&mut out, v);
                }
                put_vec(&mut out, selected);
            }
            Record::BoundingCycle {
                cycle,
                changed,
                grow_rounds,
                shrink_rounds,
                pass,
                stats,
                included,
                excluded_words,
            } => {
                put_u32(&mut out, KIND_BOUNDING_CYCLE);
                for v in [*cycle, u64::from(*changed), *grow_rounds, *shrink_rounds, *pass] {
                    put_u64(&mut out, v);
                }
                for v in [
                    stats.passes,
                    stats.peak_pass_bytes,
                    stats.peak_candidates,
                    stats.peak_state_bytes,
                ] {
                    put_u64(&mut out, v);
                }
                put_vec(&mut out, included);
                put_vec(&mut out, excluded_words);
            }
            Record::BoundingDone {
                grow_rounds,
                shrink_rounds,
                k_remaining,
                included,
                excluded_words,
            } => {
                put_u32(&mut out, KIND_BOUNDING_DONE);
                for v in [grow_rounds, shrink_rounds, k_remaining] {
                    put_u64(&mut out, *v);
                }
                put_vec(&mut out, included);
                put_vec(&mut out, excluded_words);
            }
            Record::RunComplete => put_u32(&mut out, KIND_RUN_COMPLETE),
        }
        out
    }

    /// Decodes one record payload.
    ///
    /// # Errors
    ///
    /// [`JournalError::UnknownRecordKind`] for kinds this build does not
    /// know, [`JournalError::Malformed`] for structurally broken
    /// payloads. Both mean format trouble, not a torn tail — the frame's
    /// checksum already validated these exact bytes.
    pub fn decode(payload: &[u8]) -> Result<Record, JournalError> {
        let mut c = Cursor { bytes: payload };
        let kind = c.u32()?;
        let record = match kind {
            KIND_RUN_START => Record::RunStart {
                fingerprint: c.u64()?,
                algorithm: c.u64()?,
                n: c.u64()?,
                k: c.u64()?,
                seed: c.u64()?,
                machines: c.u64()?,
                rounds: c.u64()?,
            },
            KIND_GREEDY_ROUND => Record::GreedyRound {
                round: c.u64()?,
                input_size: c.u64()?,
                target: c.u64()?,
                partitions: c.u64()?,
                seed: c.u64()?,
                stats: GreedySnapshot {
                    rounds: c.u64()?,
                    steps: c.u64()?,
                    peak_round_bytes: c.u64()?,
                    peak_step_winners: c.u64()?,
                    winners_collected: c.u64()?,
                    peak_state_bytes: c.u64()?,
                    bytes_broadcast: c.u64()?,
                },
                selected: c.vec()?,
            },
            KIND_BOUNDING_CYCLE => Record::BoundingCycle {
                cycle: c.u64()?,
                changed: c.u64()? != 0,
                grow_rounds: c.u64()?,
                shrink_rounds: c.u64()?,
                pass: c.u64()?,
                stats: BoundingSnapshot {
                    passes: c.u64()?,
                    peak_pass_bytes: c.u64()?,
                    peak_candidates: c.u64()?,
                    peak_state_bytes: c.u64()?,
                },
                included: c.vec()?,
                excluded_words: c.vec()?,
            },
            KIND_BOUNDING_DONE => Record::BoundingDone {
                grow_rounds: c.u64()?,
                shrink_rounds: c.u64()?,
                k_remaining: c.u64()?,
                included: c.vec()?,
                excluded_words: c.vec()?,
            },
            KIND_RUN_COMPLETE => Record::RunComplete,
            other => return Err(JournalError::UnknownRecordKind { kind: other }),
        };
        c.done()?;
        Ok(record)
    }
}

/// Runs `op`, injecting the fault plan's journal-write faults and
/// retrying injected transient failures with bounded backoff.
fn journal_io<T>(
    context: &'static str,
    mut op: impl FnMut() -> io::Result<T>,
) -> Result<T, JournalError> {
    for attempt in 0..faults::MAX_IO_ATTEMPTS {
        if let Some(err) = faults::inject_io(FaultSite::JournalWrite) {
            if faults::is_injected_transient(&err) && attempt + 1 < faults::MAX_IO_ATTEMPTS {
                faults::backoff(attempt);
                continue;
            }
            return Err(JournalError::io(context, err));
        }
        return op().map_err(|e| JournalError::io(context, e));
    }
    unreachable!("the retry loop always returns within MAX_IO_ATTEMPTS");
}

/// An open journal positioned for appending.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    appended: u64,
}

impl Journal {
    /// Creates (or truncates) a journal at `path` and writes the header.
    ///
    /// # Errors
    ///
    /// Any I/O failure, as [`JournalError::Io`].
    pub fn create(path: &Path) -> Result<Journal, JournalError> {
        let mut file = journal_io("creating the journal file", || {
            OpenOptions::new().write(true).create(true).truncate(true).open(path)
        })?;
        let mut header = [0u8; HEADER_LEN];
        header[0..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&VERSION.to_le_bytes());
        // Flags and reserved bytes stay zero.
        journal_io("writing the journal header", || file.write_all(&header))?;
        journal_io("syncing the journal header", || file.sync_data())?;
        Ok(Journal { file, path: path.to_path_buf(), appended: 0 })
    }

    /// Appends one record (framed and checksummed). The record is
    /// durable only after the next [`Journal::sync`].
    ///
    /// # Errors
    ///
    /// Any I/O failure, as [`JournalError::Io`].
    pub fn append(&mut self, record: &Record) -> Result<(), JournalError> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(12 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(&payload);
        put_u64(&mut frame, checksum(&payload));
        let file = &mut self.file;
        journal_io("appending a journal record", || file.write_all(&frame))?;
        self.appended += 1;
        submod_obs::counter!("journal.records_written").incr();
        submod_obs::counter!("journal.bytes_written").add(frame.len() as u64);
        Ok(())
    }

    /// Forces everything appended so far to disk — the round-boundary
    /// durability point.
    ///
    /// # Errors
    ///
    /// Any I/O failure, as [`JournalError::Io`].
    pub fn sync(&mut self) -> Result<(), JournalError> {
        let file = &mut self.file;
        journal_io("syncing the journal", || file.sync_data())?;
        submod_obs::counter!("journal.syncs").incr();
        Ok(())
    }

    /// Records appended through this handle.
    pub fn records_appended(&self) -> u64 {
        self.appended
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The validated contents of a journal file.
#[derive(Clone, Debug)]
pub struct Replay {
    /// Every complete, checksum-valid record, in append order.
    pub records: Vec<Record>,
    /// Byte length of the valid prefix (header plus complete frames).
    pub valid_len: u64,
    /// Bytes of torn tail after the valid prefix (0 for a clean file).
    pub torn_bytes: u64,
}

/// Reads and validates a journal. Incomplete or checksum-failing tail
/// bytes are reported as `torn_bytes`, not an error — that is the state
/// a crash mid-append leaves behind, and exactly what resume recovers
/// from.
///
/// # Errors
///
/// [`JournalError::Io`] when the file cannot be read, the header errors
/// of the module docs, and [`JournalError::UnknownRecordKind`] /
/// [`JournalError::Malformed`] for checksum-valid records this build
/// cannot decode.
pub fn replay(path: &Path) -> Result<Replay, JournalError> {
    let mut file =
        File::open(path).map_err(|e| JournalError::io("opening the journal for replay", e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(|e| JournalError::io("reading the journal", e))?;
    if bytes.len() < HEADER_LEN {
        return Err(JournalError::TruncatedHeader { actual: bytes.len() as u64 });
    }
    let mut magic = [0u8; 8];
    magic.copy_from_slice(&bytes[0..8]);
    if magic != MAGIC {
        return Err(JournalError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(JournalError::UnsupportedVersion { found: version });
    }
    let flags = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if flags != 0 {
        return Err(JournalError::UnknownFlags { found: flags });
    }
    if let Some(off) = bytes[16..HEADER_LEN].iter().position(|&b| b != 0) {
        return Err(JournalError::ReservedNonZero { position: 16 + off });
    }

    let mut records = Vec::new();
    let mut offset = HEADER_LEN;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            break; // clean end
        }
        if remaining < 4 {
            break; // torn length prefix
        }
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD_LEN || remaining < 4 + len + 8 {
            break; // torn frame (or absurd length from a torn prefix)
        }
        let payload = &bytes[offset + 4..offset + 4 + len];
        let stored = u64::from_le_bytes(
            bytes[offset + 4 + len..offset + 12 + len].try_into().expect("8 bytes"),
        );
        if checksum(payload) != stored {
            break; // torn checksum (or payload corrupted mid-write)
        }
        records.push(Record::decode(payload)?);
        offset += 12 + len;
    }
    let torn = (bytes.len() - offset) as u64;
    submod_obs::counter!("journal.records_replayed").add(records.len() as u64);
    if torn > 0 {
        submod_obs::counter!("journal.torn_bytes").add(torn);
    }
    Ok(Replay { records, valid_len: offset as u64, torn_bytes: torn })
}

/// Replays `path`, truncates any torn tail in place, and reopens the
/// journal for appending — the resume entry point.
///
/// # Errors
///
/// Everything [`replay`] returns, plus I/O failures truncating or
/// reopening the file.
pub fn open_resume(path: &Path) -> Result<(Replay, Journal), JournalError> {
    let replayed = replay(path)?;
    let mut file = journal_io("reopening the journal for append", || {
        OpenOptions::new().read(true).write(true).open(path)
    })?;
    if replayed.torn_bytes > 0 {
        journal_io("truncating the journal's torn tail", || file.set_len(replayed.valid_len))?;
        journal_io("syncing the truncated journal", || file.sync_data())?;
    }
    journal_io("seeking to the journal's end", || {
        file.seek(SeekFrom::Start(replayed.valid_len)).map(|_| ())
    })?;
    Ok((replayed, Journal { file, path: path.to_path_buf(), appended: 0 }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("submod-journal-test-{}-{tag}-{id}", std::process::id()))
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::RunStart {
                fingerprint: 0xDEAD_BEEF,
                algorithm: 1,
                n: 100,
                k: 10,
                seed: 7,
                machines: 4,
                rounds: 3,
            },
            Record::GreedyRound {
                round: 1,
                input_size: 100,
                target: 40,
                partitions: 4,
                seed: 7 ^ 1 << 32,
                stats: GreedySnapshot {
                    rounds: 1,
                    steps: 10,
                    peak_round_bytes: 2048,
                    peak_step_winners: 4,
                    winners_collected: 40,
                    peak_state_bytes: 512,
                    bytes_broadcast: 128,
                },
                selected: (0..40).map(|i| i * 2).collect(),
            },
            Record::BoundingCycle {
                cycle: 1,
                changed: true,
                grow_rounds: 1,
                shrink_rounds: 1,
                pass: 2,
                stats: BoundingSnapshot {
                    passes: 2,
                    peak_pass_bytes: 999,
                    peak_candidates: 17,
                    peak_state_bytes: 64,
                },
                included: vec![3, 9, 12],
                excluded_words: vec![0b1010, 0, u64::MAX],
            },
            Record::BoundingDone {
                grow_rounds: 2,
                shrink_rounds: 2,
                k_remaining: 4,
                included: vec![3, 9],
                excluded_words: vec![1, 2, 3],
            },
            Record::RunComplete,
        ]
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn records_roundtrip_through_encode_decode() {
        for record in sample_records() {
            let payload = record.encode();
            assert_eq!(Record::decode(&payload).unwrap(), record);
        }
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = temp_path("roundtrip");
        let _cleanup = Cleanup(path.clone());
        let mut journal = Journal::create(&path).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        journal.sync().unwrap();
        assert_eq!(journal.records_appended(), 5);
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.records, sample_records());
        assert_eq!(replayed.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_resume_appends() {
        let path = temp_path("torn");
        let _cleanup = Cleanup(path.clone());
        let mut journal = Journal::create(&path).unwrap();
        let records = sample_records();
        for record in &records[..3] {
            journal.append(record).unwrap();
        }
        journal.sync().unwrap();
        drop(journal);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: half of a 4th record's frame.
        let mut bytes = std::fs::read(&path).unwrap();
        let torn_frame = {
            let payload = records[3].encode();
            let mut frame = Vec::new();
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&payload);
            frame.extend_from_slice(&checksum(&payload).to_le_bytes());
            frame.truncate(frame.len() / 2);
            frame
        };
        bytes.extend_from_slice(&torn_frame);
        std::fs::write(&path, &bytes).unwrap();

        let (replayed, mut journal) = open_resume(&path).unwrap();
        assert_eq!(replayed.records, records[..3].to_vec());
        assert_eq!(replayed.torn_bytes, torn_frame.len() as u64);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len, "tail truncated");
        // The resumed handle appends cleanly after the truncation point.
        journal.append(&records[3]).unwrap();
        journal.sync().unwrap();
        drop(journal);
        let again = replay(&path).unwrap();
        assert_eq!(again.records, records[..4].to_vec());
        assert_eq!(again.torn_bytes, 0);
    }

    #[test]
    fn every_byte_truncation_replays_a_complete_prefix() {
        let path = temp_path("prefix");
        let _cleanup = Cleanup(path.clone());
        let mut journal = Journal::create(&path).unwrap();
        let records = sample_records();
        for record in &records {
            journal.append(record).unwrap();
        }
        journal.sync().unwrap();
        drop(journal);
        let bytes = std::fs::read(&path).unwrap();
        for cut in HEADER_LEN..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let replayed = replay(&path).unwrap();
            assert!(replayed.records.len() <= records.len());
            assert_eq!(replayed.records[..], records[..replayed.records.len()]);
            assert_eq!(replayed.valid_len + replayed.torn_bytes, cut as u64);
        }
    }

    #[test]
    fn corrupt_payload_breaks_the_checksum_and_stops_replay() {
        let path = temp_path("corrupt");
        let _cleanup = Cleanup(path.clone());
        let mut journal = Journal::create(&path).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        journal.sync().unwrap();
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the second record: frame 1 starts after
        // the header; its payload length sits in the first 4 bytes.
        let first_len =
            u32::from_le_bytes(bytes[HEADER_LEN..HEADER_LEN + 4].try_into().unwrap()) as usize;
        let second = HEADER_LEN + 12 + first_len;
        bytes[second + 8] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let replayed = replay(&path).unwrap();
        // Only the first record survives; everything after the corrupt
        // frame is tail.
        assert_eq!(replayed.records.len(), 1);
        assert!(replayed.torn_bytes > 0);
    }

    #[test]
    fn header_errors_are_typed() {
        let path = temp_path("header");
        let _cleanup = Cleanup(path.clone());
        std::fs::write(&path, b"short").unwrap();
        assert!(matches!(replay(&path), Err(JournalError::TruncatedHeader { actual: 5 })));

        let mut bogus = vec![0u8; HEADER_LEN];
        bogus[0..8].copy_from_slice(b"NOTAJRNL");
        std::fs::write(&path, &bogus).unwrap();
        assert!(matches!(replay(&path), Err(JournalError::BadMagic { .. })));

        let mut wrong_version = vec![0u8; HEADER_LEN];
        wrong_version[0..8].copy_from_slice(&MAGIC);
        wrong_version[8..12].copy_from_slice(&9u32.to_le_bytes());
        std::fs::write(&path, &wrong_version).unwrap();
        assert!(matches!(replay(&path), Err(JournalError::UnsupportedVersion { found: 9 })));

        let mut flagged = vec![0u8; HEADER_LEN];
        flagged[0..8].copy_from_slice(&MAGIC);
        flagged[8..12].copy_from_slice(&VERSION.to_le_bytes());
        flagged[12] = 1;
        std::fs::write(&path, &flagged).unwrap();
        assert!(matches!(replay(&path), Err(JournalError::UnknownFlags { found: 1 })));

        let mut reserved = vec![0u8; HEADER_LEN];
        reserved[0..8].copy_from_slice(&MAGIC);
        reserved[8..12].copy_from_slice(&VERSION.to_le_bytes());
        reserved[20] = 7;
        std::fs::write(&path, &reserved).unwrap();
        assert!(matches!(replay(&path), Err(JournalError::ReservedNonZero { position: 20 })));
    }

    #[test]
    fn unknown_kind_is_an_error_not_a_torn_tail() {
        let path = temp_path("kind");
        let _cleanup = Cleanup(path.clone());
        let mut journal = Journal::create(&path).unwrap();
        journal.sync().unwrap();
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        let payload = 999u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&checksum(&payload).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay(&path), Err(JournalError::UnknownRecordKind { kind: 999 })));
    }

    #[test]
    fn transient_journal_faults_are_retried() {
        use submod_obs::faults::{FaultMode, FaultPlan};
        let _guard = submod_obs::faults::override_plan(FaultPlan {
            mode: FaultMode::TransientIo,
            seed: 2,
            rate: 1.0,
        });
        let path = temp_path("faults");
        let _cleanup = Cleanup(path.clone());
        // Rate 1.0 transient: every first attempt fails, every retry
        // succeeds — the journal must come out complete regardless.
        let mut journal = Journal::create(&path).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        journal.sync().unwrap();
        drop(journal);
        drop(_guard);
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.records, sample_records());
    }

    #[test]
    fn permanent_journal_faults_surface_as_typed_errors() {
        use submod_obs::faults::{FaultMode, FaultPlan};
        let path = temp_path("permfaults");
        let _cleanup = Cleanup(path.clone());
        let _guard = submod_obs::faults::override_plan(FaultPlan {
            mode: FaultMode::PermanentIo,
            seed: 2,
            rate: 1.0,
        });
        match Journal::create(&path) {
            Err(JournalError::Io { context, source }) => {
                assert_eq!(context, "creating the journal file");
                assert!(source.to_string().contains(faults::INJECTED_MARKER));
            }
            other => panic!("expected an injected Io error, got {other:?}"),
        }
    }

    #[test]
    fn display_is_informative() {
        let err = JournalError::Malformed { detail: "boom" };
        assert!(err.to_string().contains("boom"));
        assert!(JournalError::UnknownRecordKind { kind: 7 }.to_string().contains('7'));
    }
}
