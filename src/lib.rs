//! # submod-select
//!
//! A Rust reproduction of the MLSys 2025 paper *"On Distributed
//! Larger-Than-Memory Subset Selection With Pairwise Submodular
//! Functions"* (Böther, Sebastian, Awasthi, Klimovic, Ramalingam).
//!
//! The facade crate re-exports the whole stack:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`submod_core`] | objective, similarity graph, priority queue, centralized greedy |
//! | [`submod_exec`] | work-stealing thread pool behind every parallel path (`EXEC_NUM_THREADS`) |
//! | [`submod_kernels`] | runtime-dispatched SIMD distance kernels (`SUBMOD_KERNELS`) |
//! | [`submod_dataflow`] | Beam-style engine with memory budgets & spill-to-disk |
//! | [`submod_knn`] | exact / IVF / LSH k-NN graph construction |
//! | [`submod_data`] | synthetic datasets, margin utilities, virtual perturbed data |
//! | [`submod_dist`] | bounding + multi-round distributed greedy + baselines |
//! | [`submod_obs`] | tracing + metrics: spans, counters, chrome-trace export (`SUBMOD_TRACE`) |
//!
//! # Quickstart
//!
//! ```
//! use submod_select::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. A synthetic clustered dataset with margin utilities and a 10-NN graph.
//! let instance = build_instance(&DatasetConfig::tiny())?;
//! let objective = instance.objective(0.9)?;
//! let k = instance.len() / 10;
//!
//! // 2. The centralized reference (paper Algorithm 2).
//! let central = greedy_select(&instance.graph, &objective, k)?;
//!
//! // 3. The distributed pipeline: approximate bounding + multi-round greedy.
//! let config = PipelineConfig::with_bounding(
//!     BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 1)?,
//!     DistGreedyConfig::new(4, 4)?.adaptive(true),
//! );
//! let outcome = select_subset(&instance.graph, &objective, k, &config)?;
//!
//! // 4. Distributed quality tracks the centralized reference.
//! let ratio = outcome.selection.objective_value() / central.objective_value();
//! assert!(ratio > 0.9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use submod_core;
pub use submod_data;
pub use submod_dataflow;
pub use submod_dist;
pub use submod_exec;
pub use submod_kernels;
pub use submod_knn;
pub use submod_obs;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use submod_core::{
        greedy_select, greedy_select_with, lazy_greedy_select, naive_greedy_select,
        stochastic_greedy_select, threshold_greedy_select, CoreError, GraphBuilder, GreedyOptions,
        NodeId, NodeSet, PairwiseObjective, ScoreNormalizer, Selection, SimilarityGraph,
    };
    pub use submod_data::{
        build_instance, center_utilities, ClusteredDataset, CoarseClassifier, DataError,
        DatasetConfig, PerturbedDataset, SelectionInstance,
    };
    pub use submod_dataflow::{DataflowError, MemoryBudget, PCollection, Pipeline};
    pub use submod_dist::{
        bound_dataflow, bound_dataflow_with_stats, bound_in_memory, bound_in_memory_with_stats,
        complete_selection, distributed_greedy, distributed_greedy_dataflow,
        distributed_greedy_dataflow_with_stats, distributed_greedy_with_stats, greedi,
        greedi_dataflow, score_dataflow, score_in_memory, select_subset, theorem_4_6,
        BoundingConfig, BoundingOutcome, BoundingStats, DeltaSchedule, DistError, DistGreedyConfig,
        GreedyStats, PartitionStyle, PipelineConfig, SamplingStrategy,
    };
    pub use submod_knn::{build_knn_graph, Embeddings, KnnBackend, NearestNeighbors};
}
